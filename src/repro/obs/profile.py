"""Cycle-exact source-line profiling (``ProfileSink``).

Attributes **simulated** cycles -- exactly, not sampled -- to
(function, SlipC source line, time category, memory level) tuples, per
track.  Three information streams meet here:

* the VM's instrumented dispatch loop tallies every instruction's
  static cost (and the rt/print surcharge) under its (function, line)
  key into ``TrackProfile.pending`` -- see
  :meth:`repro.interp.interpreter.VM._run_profiled`;
* the shell's synchronous memory fast paths report their per-access
  busy charge and L2-stall portion through :meth:`TrackProfile.fast`,
  keyed to the access site;
* the probe's span push/pop/switch/close calls drive a settle clock
  identical to :class:`~repro.obs.aggregate.TimeBreakdown`'s, so every
  elapsed simulated interval lands in exactly one (line, category,
  level) bucket and the per-line totals sum to the track's breakdown.

At a depth-0 settle (the interval was "busy" time) the pending VM
tally and fast-path charges are drained first -- each capped by the
actually-elapsed interval, so a recovery interrupt that lands mid
debt-flush can never attribute cycles that never became simulated time
-- and whatever remains (runtime-call surcharges, L1-probe hits,
suppressed-store charges) is attributed to the VM's current source
position.  Inside a span, the interval is attributed to the position
captured when the span was entered; for "memory" spans the memory
system's resolution level (l1/l2/local/remote/remote3, via
:meth:`~repro.obs.probe.Probe.mem_level`) splits the bucket further.

Like every ``repro.obs`` facility, profiling only records: it never
touches the engine, so simulated cycles are bit-identical with the
profiler on or off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .probe import Probe
from .sink import Sink

__all__ = ["TrackProfile", "ProfileSink", "LineKey", "line_totals",
           "collapsed_stacks", "write_collapsed", "profile_total",
           "MEM_LEVELS"]

#: Memory-level buckets in display order: CMP-local hits, local home
#: memory, clean remote (2-hop), dirty remote (3-hop), merged/other.
MEM_LEVELS = ("l1", "l2", "local", "remote", "remote3", "merged")

#: A profile data key: (function name, source line, category, level).
LineKey = Tuple[str, int, str, str]

_NOPOS = ("", 0)


class TrackProfile:
    """Live per-track recorder behind a profiling probe.

    ``data`` maps (func, line, category, level) -> simulated cycles;
    ``pending`` is the (func, line) -> busy-cycles dict the VM tallies
    into (shared by identity with ``vm.profile``); ``pending_fast``
    holds fast-path L2 stalls awaiting the next depth-0 settle.
    """

    __slots__ = ("track", "vm", "data", "pending", "pending_fast",
                 "_stack", "_last", "_mem_level", "_lastpos", "closed")

    def __init__(self, track: str, start: float = 0.0):
        self.track = track
        self.vm = None
        self.data: Dict[LineKey, float] = {}
        self.pending: Dict[Tuple[str, int], float] = {}
        self.pending_fast: Dict[Tuple[Tuple[str, int], str], float] = {}
        self._stack: List[Tuple[str, Tuple[str, int]]] = []
        self._last = start
        self._mem_level: Optional[str] = None
        self._lastpos: Tuple[str, int] = _NOPOS
        self.closed = False

    # -- wiring ----------------------------------------------------------

    def bind_vm(self, vm) -> None:
        """Adopt a VM: share the pending tally into it (``vm.profile``)
        and read source positions from it at span boundaries.

        Setting ``vm.profile`` also takes precedence over the
        generated-code tier: ``VM.run()`` checks it before the
        compiled-function table, so a profiled VM always executes the
        line-attributing ``_run_profiled`` loop (the generated code
        folds per-line charges into block accumulators and cannot
        attribute them).  Cycle totals are identical either way --
        asserted by ``tests/test_interp_compile.py``."""
        vm.profile = self.pending
        self.vm = vm

    def _pos(self) -> Tuple[str, int]:
        """Current (function, line) of the bound VM (sticky: the last
        known position is reused when no frame is live)."""
        vm = self.vm
        if vm is not None:
            at = vm.position()
            if at is not None:
                code, pc = at
                lines = getattr(code, "lines", None)
                line = lines[pc] if lines and pc < len(lines) else 0
                self._lastpos = (code.name, line)
        return self._lastpos

    # -- recording hooks (driven by Probe) -------------------------------

    def push(self, category: str, now: float) -> None:
        self._settle(now)
        self._stack.append((category, self._pos()))

    def pop(self, now: float) -> str:
        self._settle(now)
        cat, _ = self._stack.pop()
        if cat == "memory":
            self._mem_level = None
        return cat

    def switch(self, category: str, now: float) -> None:
        self._settle(now)
        if self._stack:
            old, _ = self._stack[-1]
            if old == "memory":
                self._mem_level = None
            self._stack[-1] = (category, self._pos())
        else:
            self._stack.append((category, self._pos()))

    def close(self, now: float) -> None:
        if self.closed:
            return
        self._settle(now)
        self._stack.clear()
        self.closed = True

    def mem_level(self, level: str) -> None:
        """Tag the open "memory" span with its resolution level."""
        self._mem_level = level

    def fast(self, busy: float, stall: float, level: str) -> None:
        """Record a synchronous fast-path access at the current site:
        ``busy`` cycles of access charge and ``stall`` cycles of
        ``level``-hit latency (reattributed busy -> memory, mirroring
        the shell's ``fast_mem_cycles`` transfer)."""
        pos = self._pos()
        pend = self.pending
        pend[pos] = pend.get(pos, 0.0) + busy
        if stall:
            key = (pos, level)
            pf = self.pending_fast
            pf[key] = pf.get(key, 0.0) + stall

    # -- the settle clock -------------------------------------------------

    def _add(self, pos: Tuple[str, int], cat: str, level: str,
             dt: float) -> None:
        key = (pos[0], pos[1], cat, level)
        self.data[key] = self.data.get(key, 0.0) + dt

    def _settle(self, now: float) -> None:
        dt = now - self._last
        if dt < 0:
            raise ValueError(
                f"profile time went backwards on track {self.track!r} "
                f"({self._last} -> {now})")
        self._last = now
        if self._stack:
            if dt:
                cat, pos = self._stack[-1]
                level = (self._mem_level or "merged") \
                    if cat == "memory" else ""
                self._add(pos, cat, level, dt)
            return
        # Depth 0: the interval is busy time.  Drain the fast-path
        # stalls and the VM tally -- each capped by what actually
        # elapsed; an un-elapsed remainder (recovery interrupt mid
        # debt-flush) stays pending for the next settle -- then credit
        # the residual (rt surcharges, direct yields) to the current
        # source position.
        avail = dt
        if self.pending_fast:
            done = []
            for key, c in self.pending_fast.items():
                take = c if c <= avail else avail
                if take:
                    (pos, level) = key
                    self._add(pos, "memory", level, take)
                    avail -= take
                if take == c:
                    done.append(key)
                else:
                    self.pending_fast[key] = c - take
            for key in done:
                del self.pending_fast[key]
        if self.pending:
            done = []
            for pos, c in self.pending.items():
                take = c if c <= avail else avail
                if take:
                    self._add(pos, "busy", "", take)
                    avail -= take
                if take == c:
                    done.append(pos)
                else:
                    self.pending[pos] = c - take
            for pos in done:
                del self.pending[pos]
        if avail:
            self._add(self._pos(), "busy", "", avail)

    # -- queries ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current(self) -> str:
        return self._stack[-1][0] if self._stack else "busy"


class ProfileSink(Sink):
    """Per-track cycle-exact line profiles and nothing else.

    Usually composed with an :class:`~repro.obs.sink.AggregateSink`
    through a :class:`~repro.obs.sink.TeeSink` (the ``"profile"`` sink
    spec), so the historical aggregate outputs stay available while
    the profile is recorded alongside.
    """

    def __init__(self):
        super().__init__()
        self.profiles: Dict[str, TrackProfile] = {}

    def _make_probe(self, track: str, start: float) -> Probe:
        tp = self.profiles[track] = TrackProfile(track, start)
        return Probe(track, prof=tp)

    def profile_data(self) -> Dict[str, Dict[LineKey, float]]:
        """Plain-data snapshot (picklable, deterministically ordered):
        track -> {(func, line, category, level): cycles}, empty tracks
        omitted."""
        return {track: dict(tp.data)
                for track, tp in self.profiles.items() if tp.data}


# ----------------------------------------------------------- shaping

def _stream_of(track: str) -> str:
    """"R"/"A" for shell tracks (name convention ``R3@n1c2``, possibly
    behind a ``bench:cfg:`` prefix in merged profiles), else ""."""
    name = track.rsplit(":", 1)[-1]
    return name[0] if name[:1] in ("R", "A") else ""


def profile_total(profile: Dict[str, Dict[LineKey, float]],
                  category: Optional[str] = None) -> float:
    """Total profiled cycles across tracks (optionally one category)."""
    return sum(c for per_track in profile.values()
               for (_, _, cat, _), c in per_track.items()
               if category is None or cat == category)


def line_totals(profile: Dict[str, Dict[LineKey, float]]
                ) -> Dict[Tuple[str, int], Dict]:
    """Collapse a per-track profile to per-(func, line) rows.

    Each row dict has ``total``, ``busy``, per-category totals under
    ``cats``, memory-level totals under ``levels``, and per-stream
    (R vs A) totals under ``streams``.
    """
    rows: Dict[Tuple[str, int], Dict] = {}
    for track, per_track in profile.items():
        stream = _stream_of(track)
        for (func, line, cat, level), cycles in per_track.items():
            row = rows.get((func, line))
            if row is None:
                row = rows[(func, line)] = {
                    "total": 0.0, "busy": 0.0, "cats": {}, "levels": {},
                    "streams": {"R": 0.0, "A": 0.0}}
            row["total"] += cycles
            if cat == "busy":
                row["busy"] += cycles
            row["cats"][cat] = row["cats"].get(cat, 0.0) + cycles
            if cat == "memory" and level:
                row["levels"][level] = \
                    row["levels"].get(level, 0.0) + cycles
            if stream:
                row["streams"][stream] += cycles
    return rows


def collapsed_stacks(profile: Dict[str, Dict[LineKey, float]],
                     label: str = "run") -> List[str]:
    """Brendan-Gregg collapsed-stack lines: ``label;func;line N COUNT``
    (integer counts, one frame stack per source line), sorted so the
    output is deterministic regardless of dict insertion history."""
    per_line: Dict[Tuple[str, int], float] = {}
    for per_track in profile.values():
        for (func, line, _cat, _level), cycles in per_track.items():
            key = (func, line)
            per_line[key] = per_line.get(key, 0.0) + cycles
    out = []
    for (func, line), cycles in per_line.items():
        count = int(round(cycles))
        if count > 0:
            out.append(f"{label};{func or '<runtime>'};line {line} {count}")
    return sorted(out)


def write_collapsed(path, stacks: List[str]) -> None:
    """Write collapsed-stack lines to ``path`` (flamegraph.pl input)."""
    with open(path, "w") as fh:
        fh.write("\n".join(stacks) + ("\n" if stacks else ""))
