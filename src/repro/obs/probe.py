"""The Probe: the one object producers record observability through.

A probe is bound to a *track* (one simulated processor, one CMP's
memory side, one pair channel, ...) and exposes the full recording
surface -- counters, exclusive time-category spans, instant events,
classification records.  Which of those are actually retained is
decided by the :class:`~repro.obs.sink.Sink` that minted the probe: it
fills (or leaves ``None``) the probe's collector slots, so a disabled
facility costs one attribute test per call and no allocation.

Probes must never touch the simulation engine: every method is pure
recording, which is what keeps simulated cycle counts bit-identical
whether observability is off, aggregating, or tracing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .aggregate import ClassStats, Counter, TimeBreakdown

__all__ = ["Probe", "NULL_PROBE"]


class Probe:
    """Per-track recording front end (see module docstring).

    ``bd`` / ``counters`` / ``classes`` are the aggregate collectors
    (``None`` when the sink drops that facility); ``emitter`` is the
    timeline sink hook (``None`` unless a trace is being recorded);
    ``prof`` is the per-line profile recorder (``None`` unless a
    :class:`~repro.obs.profile.ProfileSink` is live).
    """

    __slots__ = ("track", "bd", "counters", "classes", "emitter", "prof")

    def __init__(self, track: str,
                 bd: Optional[TimeBreakdown] = None,
                 counters: Optional[Counter] = None,
                 classes: Optional[ClassStats] = None,
                 emitter=None, prof=None):
        self.track = track
        self.bd = bd
        self.counters = counters
        self.classes = classes
        self.emitter = emitter
        self.prof = prof

    # -- counters ------------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        """Increment a named counter on this track."""
        if self.counters is not None:
            self.counters.add(key, n)

    # -- exclusive time-category spans ---------------------------------------

    def push(self, category: str, now: float) -> None:
        """Enter a time category (exclusive-span semantics)."""
        if self.bd is not None:
            self.bd.push(category, now)
        if self.prof is not None:
            self.prof.push(category, now)
        if self.emitter is not None:
            self.emitter.emit_begin(self.track, category, now)

    def pop(self, now: float) -> Optional[str]:
        """Leave the current category; returns its name (None when
        span collection is off).  Popping with no open span while any
        collector is live is always a producer bug -- it would silently
        desynchronize span accounting -- so it raises."""
        if self.bd is None and self.prof is None:
            return None
        if self.depth == 0:
            raise ValueError(
                f"pop with no open span on track {self.track!r}")
        name = None
        if self.bd is not None:
            name = self.bd.pop(now)
        if self.prof is not None:
            pname = self.prof.pop(now)
            if name is None:
                name = pname
        if self.emitter is not None and name is not None:
            self.emitter.emit_end(self.track, name, now)
        return name

    def switch(self, category: str, now: float) -> None:
        """Replace the top category (settling time first).  Like
        :meth:`pop`, switching with no open span while a collector is
        live raises -- there is nothing to replace."""
        if self.bd is None and self.prof is None:
            return
        if self.depth == 0:
            raise ValueError(
                f"switch with no open span on track {self.track!r}")
        replaced = self.current
        if self.bd is not None:
            self.bd.switch(category, now)
        if self.prof is not None:
            self.prof.switch(category, now)
        if self.emitter is not None:
            self.emitter.emit_end(self.track, replaced, now)
            self.emitter.emit_begin(self.track, category, now)

    def close(self, now: float) -> None:
        """Finalize span accounting at end of simulation."""
        if self.bd is not None:
            open_cats = self.bd.stack
            self.bd.close(now)
            if self.emitter is not None:
                self.emitter.emit_close(self.track, open_cats, now)
        if self.prof is not None:
            self.prof.close(now)

    def transfer(self, src: str, dst: str, amount: float) -> None:
        """Post-hoc reattribution of span time (aggregate totals only;
        an already-recorded timeline is not rewritten)."""
        if self.bd is not None:
            self.bd.reattribute(src, dst, amount)

    # -- profiling -----------------------------------------------------------

    def mem_level(self, level: str) -> None:
        """Tag the open "memory" span with the level the request was
        resolved at (l1/l2/local/remote/remote3/merged)."""
        if self.prof is not None:
            self.prof.mem_level(level)

    def mem_fast(self, busy: float, stall: float, level: str) -> None:
        """Record a synchronous fast-path memory access at the current
        source position (``busy`` access charge; ``stall`` cycles of
        ``level``-hit latency that the shell will later reattribute
        busy -> memory)."""
        if self.prof is not None:
            self.prof.fast(busy, stall, level)

    @property
    def depth(self) -> int:
        """Span-stack depth (0 when span collection is off)."""
        if self.bd is not None:
            return self.bd.depth
        if self.prof is not None:
            return self.prof.depth
        return 0

    @property
    def current(self) -> str:
        """Innermost active category ('busy' when off or at depth 0)."""
        if self.bd is not None:
            return self.bd.current
        if self.prof is not None:
            return self.prof.current
        return "busy"

    @property
    def closed(self) -> bool:
        """Span accounting finalized?  (True when collection is off,
        so collectors can skip their close-if-open step.)"""
        if self.bd is not None:
            return self.bd.closed
        if self.prof is not None:
            return self.prof.closed
        return True

    def get(self, category: str) -> float:
        """Aggregated time in one category (0.0 when off)."""
        return self.bd.get(category) if self.bd is not None else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Aggregated category -> time snapshot (empty when off)."""
        return self.bd.as_dict() if self.bd is not None else {}

    # -- instants ------------------------------------------------------------

    def instant(self, name: str, now: float, args: Optional[dict] = None) -> None:
        """Record a point event on the simulated timeline (trace-only;
        dropped by aggregate/null sinks)."""
        if self.emitter is not None:
            self.emitter.emit_instant(self.track, name, now, args)

    # -- fault injection -----------------------------------------------------

    def fault(self, kind: str, now: float,
              args: Optional[dict] = None) -> None:
        """Record one injected fault (chaos runs): a ``fault.<kind>``
        counter plus a timeline instant, so traces show exactly when
        each injection landed."""
        if self.counters is not None:
            self.counters.add(f"fault.{kind}")
        if self.emitter is not None:
            self.emitter.emit_instant(self.track, f"fault.{kind}", now,
                                      args)

    # -- classification ------------------------------------------------------

    def classify(self, fetcher: str, kind: str, outcome: str,
                 now: float = 0.0) -> None:
        """Record one Figure-3/5 fill classification."""
        if self.classes is not None:
            self.classes.record(fetcher, kind, outcome)
        if self.emitter is not None:
            self.emitter.emit_instant(
                self.track, f"classify.{fetcher}-{kind}-{outcome}", now, None)

    def __repr__(self) -> str:
        on = [s for s in ("bd", "counters", "classes", "emitter", "prof")
              if getattr(self, s) is not None]
        return f"Probe({self.track!r}, on={on})"


#: Shared do-nothing probe: the default for producers constructed
#: outside a run context (no collectors, no emitter).
NULL_PROBE = Probe("null")
