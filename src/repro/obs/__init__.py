"""Observability layer: probes, sinks, and timeline export.

All metric, timing, and classification collection in the simulator goes
through this package.  Producers (the engine, the memory system, the
thread shells, the slipstream channel) hold a :class:`Probe` per track
and record three kinds of facts:

* **counters**   -- named integer tallies (``probe.count``);
* **spans**      -- exclusive time-category intervals with stack
  semantics (``probe.push`` / ``pop`` / ``switch`` / ``close``), the
  paper's Figure 2/4 execution-time accounting;
* **instants**   -- point events on the simulated timeline
  (``probe.instant``): coherence transactions, token insert/consume,
  A-stream skips, divergence and recovery;

plus shared-data **classification** records (``probe.classify``), the
paper's Figure 3/5 Timely/Late/Only taxonomy.

Where the facts go is decided once per run by the :class:`Sink`:

* :class:`AggregateSink` (default) totals everything -- it reproduces
  the historical ``Counter`` / ``TimeBreakdown`` / ``ClassStats``
  outputs exactly;
* :class:`NullSink` drops everything (observability off, near-zero
  cost);
* :class:`TraceSink` aggregates *and* records a Chrome trace-event
  timeline (one track per simulated processor) viewable in Perfetto or
  ``chrome://tracing``;
* :class:`ProfileSink` (usually behind a :class:`TeeSink` with the
  aggregate, the ``"profile"`` spec) attributes every simulated cycle
  to a (function, source line, category, memory level) bucket.

Invariant: probes only ever *record*; no sink interacts with the event
engine, so simulated cycle counts are bit-identical whichever sink is
installed (pinned by ``tests/test_obs_determinism.py``).

The :mod:`repro.obs.telemetry` subpackage applies the same discipline
to the *harness* around runs -- wall-clock event logs, metrics,
heartbeats and fleet status for the execution pipeline -- with
:data:`~repro.obs.telemetry.NULL_TELEMETRY` playing NullSink's
zero-cost-off role.
"""

from .aggregate import (CATEGORIES, ClassStats, Counter, FETCHERS, KINDS,
                        OUTCOMES, TimeBreakdown, line_outcome)
from .probe import NULL_PROBE, Probe
from .profile import (MEM_LEVELS, ProfileSink, TrackProfile,
                      collapsed_stacks, line_totals, profile_total,
                      write_collapsed)
from .sink import AggregateSink, NullSink, Sink, TeeSink, make_sink
from .telemetry import (NULL_TELEMETRY, MetricsRegistry, NullTelemetry,
                        Telemetry, collect_status, harness_trace_events,
                        read_events, render_status, validate_events)
from .trace import (TraceSink, merge_traces, trace_json, validate_trace,
                    write_trace)

__all__ = [
    "CATEGORIES", "ClassStats", "Counter", "FETCHERS", "KINDS",
    "OUTCOMES", "TimeBreakdown", "line_outcome",
    "NULL_PROBE", "Probe",
    "AggregateSink", "NullSink", "Sink", "TeeSink", "make_sink",
    "TraceSink", "merge_traces", "trace_json", "validate_trace",
    "write_trace",
    "MEM_LEVELS", "ProfileSink", "TrackProfile", "collapsed_stacks",
    "line_totals", "profile_total", "write_collapsed",
    "NULL_TELEMETRY", "MetricsRegistry", "NullTelemetry", "Telemetry",
    "collect_status", "harness_trace_events", "read_events",
    "render_status", "validate_events",
]
