"""Slipstream execution core: pair channel, control state, recovery."""

from .channel import PairChannel
from .control import DEFAULT_SYNC, SlipControl

__all__ = ["PairChannel", "DEFAULT_SYNC", "SlipControl"]
