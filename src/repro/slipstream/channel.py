"""The per-CMP A-R pair channel: token semaphore, syscall semaphore,
scheduling mailbox, and divergence bookkeeping.

This models the hardware the paper assumes inside each CMP:

* the **token semaphore** -- "a shared register (or memory location)
  between the two processors in a CMP" (Figure 1).  The A-stream
  consumes a token to skip a parallelization barrier; the R-stream
  inserts one at barrier entry (LOCAL_SYNC) or exit (GLOBAL_SYNC).  The
  initial count bounds how far ahead the A-stream may run.
* the **syscall semaphore** -- "initialized to zero and the token is
  inserted by the R-stream when exiting these routines"; used for input
  I/O and for forwarding dynamic-scheduling decisions (§3.2.2).
* the **mailbox** carrying the R-stream's published scheduling decisions
  and input values, tagged so a diverged A-stream popping the wrong
  entry is detected.
* barrier **site histories** for both streams, which implement the
  divergence check the R-stream performs at each barrier.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..obs.probe import NULL_PROBE, Probe
from ..sim import Engine, Semaphore

__all__ = ["PairChannel"]


class PairChannel:
    """Hardware-level A-R coupling for one CMP node."""

    def __init__(self, engine: Engine, node: int, op_latency: float = 0.0,
                 probe: Probe = NULL_PROBE):
        self.engine = engine
        self.node = node
        self.probe = probe
        self.tokens = Semaphore(engine, f"tok:n{node}", initial=0,
                                op_latency=op_latency)
        self.syscall = Semaphore(engine, f"sys:n{node}", initial=0,
                                 op_latency=op_latency)
        self.mailbox: Deque[Tuple[str, int, int, object]] = deque()
        # Divergence bookkeeping: barrier sites visited by each stream.
        self.r_sites: List[int] = []
        self.a_sites: List[int] = []
        self.a_faulted = False
        self.a_fault_reason: Optional[str] = None
        self.sync_type = "GLOBAL_SYNC"
        self.initial_tokens = 0
        #: Site index attached to the pending A-stream fault (None when
        #: the faulting site is unknown, e.g. a wild VM fault).
        self.a_fault_site: Optional[int] = None
        #: FaultPlan armed by the machine (None = injection off; every
        #: hook is a single is-None test).
        self.faults = None
        # statistics
        self.recoveries = 0
        self.tokens_consumed = 0
        self.decisions_forwarded = 0

    # -------------------------------------------------------------- region

    def begin_region(self, sync_type: str, tokens: int) -> None:
        """R-stream entering a parallel region: fix the sync policy and
        (re)establish the initial token count (Fig. 1: 'at the beginning
        of a parallel region, a number of tokens is allocated')."""
        self.sync_type = sync_type
        self.initial_tokens = tokens
        delta = tokens - self.tokens.count
        if delta > 0:
            self.tokens.release(delta)
        elif delta < 0:
            self.tokens.count = tokens

    # --------------------------------------------------------------- tokens

    def insert_token(self) -> None:
        """R-stream inserts one token (Fig. 1)."""
        if self.faults is not None and \
                self.faults.fire("token_loss", f"chan:n{self.node}") \
                is not None:
            # Injected token loss: the release is swallowed.  Protocol-
            # legal (indistinguishable from allocation exhaustion): the
            # A-stream falls behind but the R-stream never waits on it.
            self.probe.count("token.lost")
            self.probe.instant("token.lost", self.engine.now,
                               {"count": self.tokens.count})
            return
        self.tokens.release()
        self.probe.count("token.inserts")
        self.probe.instant("token.insert", self.engine.now,
                           {"count": self.tokens.count})

    def consume_token(self):
        """Generator: the A-stream consumes one token (waiting if the
        allocation is exhausted)."""
        yield from self.tokens.acquire()
        self.tokens_consumed += 1
        self.probe.count("token.consumes")
        self.probe.instant("token.consume", self.engine.now,
                           {"count": self.tokens.count})

    # ------------------------------------------------------------- barriers

    def r_reached_barrier(self, site: int) -> int:
        """Record the R-stream's barrier visit; returns its index."""
        self.r_sites.append(site)
        return len(self.r_sites) - 1

    def a_reached_barrier(self, site: int) -> int:
        """Record the A-stream's barrier visit; returns its index."""
        self.a_sites.append(site)
        return len(self.a_sites) - 1

    def a_predicted_visited(self) -> bool:
        """The paper's token-count heuristic: 'the R-stream can check if
        its A-stream has reached the same barrier by comparing the number
        of tokens to the initial value'."""
        return self.tokens.count < self.initial_tokens

    def divergence_detected(self) -> Optional[str]:
        """Ground-truth check: compare the aligned prefix of barrier-site
        histories.  Returns a reason string if the A-stream diverged."""
        if self.a_faulted:
            return self.a_fault_reason or "a-stream fault"
        n = min(len(self.r_sites), len(self.a_sites))
        for k in range(n):
            if self.r_sites[k] != self.a_sites[k]:
                return (f"barrier history mismatch at #{k}: "
                        f"R site {self.r_sites[k]} vs A site "
                        f"{self.a_sites[k]}")
        return None

    def mark_fault(self, reason: str, site: Optional[int] = None) -> None:
        """Flag a speculative A-stream fault for the next check.
        ``site`` attributes the fault to a synchronization site when
        one is known (mailbox mismatches)."""
        self.a_faulted = True
        self.a_fault_reason = reason
        self.a_fault_site = site
        self.probe.count("a.faults")
        self.probe.instant("a.fault", self.engine.now,
                           {"reason": reason, "site": site})

    def reset_after_recovery(self) -> None:
        """Re-align the channel after the A-stream is re-forked from the
        R-stream's state (both streams now stand at the same barrier)."""
        self.a_sites = list(self.r_sites)
        self.a_faulted = False
        self.a_fault_reason = None
        self.a_fault_site = None
        self.mailbox.clear()
        self.tokens.count = 0
        self.recoveries += 1

    # -------------------------------------------- scheduling / input relay

    def publish(self, kind: str, site: int, seq: int, payload) -> None:
        """R-stream publishes a decision (chunk, section id, input value)
        and releases the syscall semaphore (§3.2.2)."""
        if self.faults is not None:
            delta = self.faults.fire("mailbox_stale", f"chan:n{self.node}")
            if delta is not None:
                # Injected staleness: the entry lands with a corrupted
                # sequence tag, so the A-stream's take() mismatches --
                # exactly how a genuinely stale entry is detected.
                seq = seq + delta
        self.mailbox.append((kind, site, seq, payload))
        self.decisions_forwarded += 1
        self.probe.count("decisions.published")
        self.probe.instant("decision.publish", self.engine.now,
                           {"kind": kind, "site": site, "seq": seq})
        self.syscall.release()

    def take(self, kind: str, site: int, seq: int):
        """Generator (A-stream): wait for and retrieve the matching
        decision.  Returns (ok, payload); ok=False flags divergence (the
        A-stream asked for a decision the R-stream never made)."""
        yield from self.syscall.acquire()
        if not self.mailbox:
            return False, None
        got = self.mailbox.popleft()
        if got[0] != kind or got[1] != site or got[2] != seq:
            return False, got
        return True, got[3]
