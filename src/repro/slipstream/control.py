"""Slipstream control state: directive scoping and runtime resolution.

Implements §3.3 of the paper:

* a slipstream directive executed in the serial part is a **global
  setting** "for the program until being overridden by a later directive
  in the serial region";
* a directive attached to a parallel region **takes precedence but does
  not override the global setting** -- "global settings are restored
  upon exiting the parallel region";
* ``RUNTIME_SYNC`` defers the choice to the ``OMP_SLIPSTREAM``
  environment variable;
* type ``NONE`` disables slipstream execution (A-streams idle);
* the execution mode of a region is fixed for the whole region ("once
  this execution mode of a parallel region is established, it remains
  fixed to the end of this region").
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..obs.probe import NULL_PROBE, Probe
from ..runtime.env import RuntimeEnv

__all__ = ["SlipControl", "DEFAULT_SYNC"]

#: Implementation default (the paper: "we assumed it to be global
#: synchronization").
DEFAULT_SYNC: Tuple[str, int] = ("GLOBAL_SYNC", 0)


class SlipControl:
    """Per-run slipstream setting resolution."""

    def __init__(self, env: RuntimeEnv, enabled: bool,
                 probe: Probe = NULL_PROBE):
        self.env = env
        self.probe = probe
        #: machine-level intent (the paper's "control register"): only a
        #: machine launched with A-stream resources can run slipstream.
        self.enabled = enabled
        self.global_setting: Optional[Tuple[str, int]] = None
        self._pending_region: Optional[Tuple[str, int]] = None
        self._region_active: Optional[Tuple[str, int]] = None
        self.in_region = False

    # ------------------------------------------------------------ directives

    def directive(self, sync_type: str, tokens: int, cond: bool,
                  region_scoped: bool) -> None:
        """Execute a slipstream directive (the lowered runtime call)."""
        if not cond:
            return
        self.probe.count("slip.directives")
        setting = self._resolve_directive(sync_type, tokens)
        if region_scoped:
            self._pending_region = setting
        else:
            self.global_setting = setting

    def _resolve_directive(self, sync_type: str,
                           tokens: int) -> Tuple[str, int]:
        if sync_type == "RUNTIME_SYNC":
            return self.env.slipstream
        return (sync_type, tokens)

    # --------------------------------------------------------- region scope

    def region_enter(self) -> Tuple[str, int]:
        """Called at parallel_begin; returns the effective (type, tokens)
        for this region, frozen until region_exit."""
        if self._pending_region is not None:
            setting = self._pending_region
            self._pending_region = None
        elif self.global_setting is not None:
            setting = self.global_setting
        elif self.env.slipstream_set:
            setting = self.env.slipstream
        else:
            setting = DEFAULT_SYNC
        self._region_active = setting
        self.in_region = True
        self.probe.count(f"slip.region.{setting[0]}")
        return setting

    def region_exit(self) -> None:
        """Global settings are restored on region exit (§3.3)."""
        self._region_active = None
        self.in_region = False

    # ------------------------------------------------------------- queries

    @property
    def effective(self) -> Tuple[str, int]:
        """The (type, tokens) setting currently in force."""
        if self._region_active is not None:
            return self._region_active
        if self._pending_region is not None:
            return self._pending_region
        if self.global_setting is not None:
            return self.global_setting
        if self.env.slipstream_set:
            return self.env.slipstream
        return DEFAULT_SYNC

    @property
    def active(self) -> bool:
        """Is slipstream actually running (resources + not NONE)?"""
        return self.enabled and self.effective[0] != "NONE"
