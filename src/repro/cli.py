"""Command-line front end: compile and run SlipC/OpenMP programs on the
simulated machine.

Usage (also via ``python -m repro``)::

    python -m repro run prog.c --mode slipstream --cmps 16 \\
        --slipstream LOCAL_SYNC,1 --schedule dynamic,8
    python -m repro compile prog.c --disasm
    python -m repro check prog.c          # shared/private classification
    python -m repro bench cg mg --size test --cmps 4
    python -m repro profile run prog.c --mode slipstream --top 10
    python -m repro chaos --seeds 2 -j 2 --report chaos.json
    python -m repro chaos --harness       # pipeline crash-consistency
    python -m repro status /tmp/sweep     # live fleet health of a spool

This is the analogue of driving the paper's toolchain: one compiled
image, execution mode and slipstream policy chosen at run time.

Exit codes (scripts and CI key off these)::

    0  success
    1  failure (compile error, oracle violation, failed chaos matrix)
    2  bad arguments / missing file / unknown benchmark or class
    3  sweep completed but the process pool degraded to serial
    4  watchdog deadlock (SimDeadlockError; see --timeout-cycles)
    5  sweep completed with quarantined poison units (their rows are
       loud placeholder failures, not results)
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .compiler import compile_source, disassemble
from .config import PAPER_MACHINE
from .harness import render_speedups, run_static_suite
from .interp import FunctionalRunner
from .lang import analyze, parse
from .lang.errors import CompileError
from .runtime import RuntimeEnv, SimDeadlockError, run_program
from .runtime.env import parse_slipstream

__all__ = ["main"]


def _machine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cmps", type=int, default=16,
                   help="number of dual-processor CMP nodes (default 16)")


def _pipeline_args(p: argparse.ArgumentParser) -> None:
    """Execution-pipeline knobs shared by the sweep verbs."""
    p.add_argument("--resume", metavar="DIR", default=None,
                   help="checkpoint every finished unit under DIR and "
                        "resume from whatever a previous (possibly "
                        "killed) sweep already completed there")
    p.add_argument("--memo", action="store_true",
                   help="serve repeat (program, config, seed, hotpath, "
                        "faults) runs from the content-addressed "
                        "run-result memo store (REPRO_MEMO_DIR, default "
                        "~/.cache/repro/results)")
    p.add_argument("--spool", metavar="DIR", default=None,
                   help="dispatch units through a shared spool "
                        "directory; attach extra workers with "
                        "'repro worker DIR' (overrides --jobs)")
    p.add_argument("--telemetry", metavar="DIR", default=None,
                   help="record the wall-clock telemetry event log, "
                        "metrics and heartbeats under DIR (a spool "
                        "sweep records under SPOOL/telemetry "
                        "automatically)")
    p.add_argument("--harness-trace", metavar="OUT.json", default=None,
                   help="export the sweep's wall-clock timeline as "
                        "Chrome trace JSON (one track per worker; "
                        "view in Perfetto, check with "
                        "'python -m repro.obs.trace')")


def _verbosity_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="more console detail (-v per-unit progress, "
                        "-vv debug)")
    p.add_argument("--quiet", action="store_true",
                   help="errors only on the console")


def _chaos_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--timeout-cycles", type=float, default=None,
                   metavar="N",
                   help="watchdog: abort the simulation with a blocked-"
                        "process report once N cycles elapse")
    p.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                   help="arm deterministic fault injection with this seed "
                        "(all fault classes)")


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Slipstream-OpenMP compiler + simulated CMP machine")
    sub = ap.add_subparsers(dest="cmd", required=True)

    runp = sub.add_parser("run", help="compile and simulate a program")
    runp.add_argument("file")
    runp.add_argument("--mode", default="single",
                      choices=["single", "double", "slipstream",
                               "functional"])
    _machine_args(runp)
    runp.add_argument("--slipstream", metavar="TYPE[,TOKENS]",
                      help="OMP_SLIPSTREAM value (e.g. LOCAL_SYNC,1)")
    runp.add_argument("--schedule", metavar="KIND[,CHUNK]",
                      help="OMP_SCHEDULE value (for schedule(runtime))")
    runp.add_argument("--num-threads", type=int, help="OMP_NUM_THREADS")
    runp.add_argument("--inputs", type=float, nargs="*", default=None,
                      help="values consumed by read_input()")
    runp.add_argument("--stats", action="store_true",
                      help="print time breakdown and request classes")
    runp.add_argument("--selfinv", action="store_true",
                      help="enable slipstream self-invalidation")
    runp.add_argument("--trace", metavar="OUT.json",
                      help="write a Chrome trace-event timeline of the "
                           "run (open in Perfetto / chrome://tracing)")
    _chaos_args(runp)

    prof = sub.add_parser("profile",
                          help="cycle-exact source-line profiling")
    psub = prof.add_subparsers(dest="profile_cmd", required=True)
    prun = psub.add_parser(
        "run", help="compile, simulate, and print a per-line profile")
    prun.add_argument("file")
    prun.add_argument("--mode", default="single",
                      choices=["single", "double", "slipstream"])
    _machine_args(prun)
    prun.add_argument("--slipstream", metavar="TYPE[,TOKENS]",
                      help="OMP_SLIPSTREAM value (e.g. LOCAL_SYNC,1)")
    prun.add_argument("--schedule", metavar="KIND[,CHUNK]",
                      help="OMP_SCHEDULE value (for schedule(runtime))")
    prun.add_argument("--num-threads", type=int, help="OMP_NUM_THREADS")
    prun.add_argument("--inputs", type=float, nargs="*", default=None,
                      help="values consumed by read_input()")
    prun.add_argument("--top", type=int, default=20, metavar="N",
                      help="rows in the hot-line table (default 20)")
    prun.add_argument("--collapsed", metavar="OUT.txt",
                      help="write Brendan-Gregg collapsed stacks "
                           "(flamegraph.pl input)")
    prun.add_argument("--csv", metavar="OUT.csv",
                      help="write the full per-line profile as CSV")

    comp = sub.add_parser("compile", help="compile only; report the image")
    comp.add_argument("file")
    comp.add_argument("--disasm", action="store_true",
                      help="print a bytecode listing")

    chk = sub.add_parser("check",
                         help="front-end analysis: per-region "
                              "shared/private classification")
    chk.add_argument("file")

    ben = sub.add_parser("bench", help="run mini-NPB benchmarks")
    ben.add_argument("names", nargs="*", default=[],
                     help="benchmarks (default: all of bt cg lu mg sp)")
    ben.add_argument("--size", default="test", choices=["test", "bench"])
    ben.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                     help="run the suite's independent simulations on a "
                          "process pool of N workers (results are "
                          "bit-identical to -j 1; default serial)")
    ben.add_argument("--trace", metavar="OUT.json",
                     help="write a merged Chrome trace-event timeline "
                          "(one process per benchmark run)")
    ben.add_argument("--profile", metavar="OUT.txt",
                     help="profile every run; write merged collapsed "
                          "stacks to OUT and print the hot-line table")
    _machine_args(ben)
    _chaos_args(ben)
    _pipeline_args(ben)
    _verbosity_args(ben)

    wrk = sub.add_parser(
        "worker",
        help="attach a work-unit worker to a shared spool directory")
    wrk.add_argument("dir", help="spool directory (the --spool DIR of "
                                 "the driving sweep)")
    wrk.add_argument("--poll", type=float, default=0.1, metavar="S",
                     help="seconds between scans when idle (default 0.1)")
    wrk.add_argument("--lease", type=float, default=60.0, metavar="S",
                     help="reap another worker's claim after S seconds "
                          "(default 60; set above the longest unit)")
    wrk.add_argument("--max-units", type=int, default=None, metavar="N",
                     help="exit after executing N units")
    wrk.add_argument("--wait", action="store_true",
                     help="keep polling for new units instead of "
                          "exiting when the spool is drained")
    _verbosity_args(wrk)

    sta = sub.add_parser(
        "status",
        help="render the live fleet state of a spool sweep")
    sta.add_argument("dir", help="spool directory of the sweep "
                                 "(the --spool DIR)")
    sta.add_argument("--stall", type=float, default=30.0, metavar="S",
                     help="treat a claim or worker silent for more "
                          "than S seconds as stalled (default 30)")
    sta.add_argument("--json", action="store_true",
                     help="emit the machine-readable snapshot instead "
                          "of the report")

    cha = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection matrix with the output oracle")
    cha.add_argument("names", nargs="*", default=[],
                     help="benchmarks (default: cg lu mg)")
    cha.add_argument("--size", default="test", choices=["test", "bench"])
    cha.add_argument("--seeds", type=int, default=2, metavar="N",
                     help="fault seeds per benchmark/scenario (default 2)")
    cha.add_argument("--chaos-seed", type=int, default=0, metavar="SEED",
                     help="base seed the matrix seeds derive from")
    cha.add_argument("--classes", default=None, metavar="C1,C2",
                     help="restrict to one scenario arming exactly these "
                          "fault classes (default: one scenario per class "
                          "plus all classes together)")
    cha.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                     help="process-pool workers (default serial)")
    cha.add_argument("--timeout-cycles", type=float, default=None,
                     metavar="N",
                     help="per-run watchdog budget (default 5e6)")
    cha.add_argument("--report", metavar="OUT.json",
                     help="write the full machine-readable report")
    cha.add_argument("--harness", action="store_true",
                     help="run the execution-harness hazard matrix "
                          "(corrupt publishes, disk-full, lease races, "
                          "worker kills) instead of the simulator fault "
                          "matrix; every sweep must merge bit-identical "
                          "to a hazard-free baseline")
    cha.add_argument("--workdir", metavar="DIR", default=None,
                     help="(--harness) scenario working directory "
                          "(default: a fresh temp dir)")
    cha.add_argument("--transports", metavar="T1,T2", default=None,
                     help="(--harness) restrict to these transports "
                          "(serial,pool,spool; default all)")
    _machine_args(cha)
    _pipeline_args(cha)
    _verbosity_args(cha)
    return ap


def _setup_logging(args, default: int = logging.WARNING) -> None:
    """Map --quiet/-v onto the ``repro`` logger tree.

    The worker verb defaults to per-unit INFO lines (its console
    output *is* the product); the sweep verbs default to warnings
    (retries, degradation, reaped leases) only.
    """
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif getattr(args, "verbose", 0) >= 2:
        level = logging.DEBUG
    elif getattr(args, "verbose", 0) == 1:
        level = logging.INFO
    else:
        level = default
    logging.basicConfig(stream=sys.stderr, format="%(message)s")
    logging.getLogger("repro").setLevel(level)
    if args.cmd == "worker":
        # run_worker mirrors this logger to the CLI's stdout; leave it
        # chatty unless the user explicitly quieted it.
        logging.getLogger("repro.worker").setLevel(
            level if (getattr(args, "quiet", False)
                      or getattr(args, "verbose", 0)) else logging.INFO)


def _telemetry_from_args(args):
    """The telemetry session a sweep verb asked for: an explicit
    --telemetry DIR, the spool's shared area (spool sweeps are always
    recorded -- attached workers already write there), or an in-memory
    session just big enough to feed --harness-trace."""
    from .harness import Telemetry, telemetry_area
    if getattr(args, "telemetry", None):
        return Telemetry(root=args.telemetry)
    if args.spool:
        return Telemetry(root=telemetry_area(args.spool))
    if getattr(args, "harness_trace", None):
        return Telemetry()
    return None


def _pipeline_from_args(args):
    """Build the execution pipeline a sweep verb asked for: transport
    from --spool/--jobs, checkpoint journal from --resume, memo store
    from --memo, telemetry from --telemetry/--spool/--harness-trace."""
    from .harness import (CheckpointJournal, DirQueueTransport,
                          ExecutionPipeline, MemoStore, PoolTransport,
                          SerialTransport)
    if args.spool:
        transport = DirQueueTransport(args.spool)
    elif args.jobs and args.jobs > 1:
        transport = PoolTransport(jobs=args.jobs)
    else:
        transport = SerialTransport()
    return ExecutionPipeline(
        transport=transport,
        journal=CheckpointJournal(args.resume) if args.resume else None,
        memo=MemoStore() if args.memo else None,
        telemetry=_telemetry_from_args(args))


def _finish_telemetry(args, context, out) -> None:
    """End-of-sweep telemetry wrap-up: final heartbeat + log close,
    then the --harness-trace export (from the shared on-disk area when
    one exists -- it includes attached workers' records -- else from
    the driver's in-memory session)."""
    tel = context.telemetry
    if not tel.enabled:
        return
    tel.close()
    path = getattr(args, "harness_trace", None)
    if not path:
        return
    from .obs import harness_trace_events, read_events, write_trace
    records = read_events(tel.dir) if tel.dir is not None else tel.records
    events = harness_trace_events(records)
    write_trace(path, events)
    print(f"harness trace written to {path} ({len(events)} events)",
          file=out)


def _env_from_args(args) -> RuntimeEnv:
    env = RuntimeEnv()
    if getattr(args, "slipstream", None):
        env.slipstream = parse_slipstream(args.slipstream)
        env.slipstream_set = True
    if getattr(args, "schedule", None):
        parts = args.schedule.split(",")
        env.schedule = (parts[0].strip().lower(),
                        int(parts[1]) if len(parts) > 1 else None)
    if getattr(args, "num_threads", None):
        env.num_threads = args.num_threads
    return env


def _cmd_run(args, out) -> int:
    source = open(args.file).read()
    image = compile_source(source)
    if args.mode == "functional":
        if args.trace or args.chaos_seed is not None:
            print("--trace/--chaos-seed require a simulated mode "
                  "(single/double/slipstream)", file=sys.stderr)
            return 2
        runner = FunctionalRunner(image, inputs=args.inputs).run()
        for row in runner.output:
            print(*row, file=out)
        return 0
    cfg = PAPER_MACHINE.with_(n_cmps=args.cmps)
    kw = {}
    if args.chaos_seed is not None:
        from .faults import FaultConfig
        kw["faults"] = FaultConfig(args.chaos_seed)
    if args.timeout_cycles is not None:
        kw["max_cycles"] = args.timeout_cycles
    result = run_program(image, cfg=cfg, mode=args.mode,
                         env=_env_from_args(args), inputs=args.inputs,
                         selfinv=args.selfinv,
                         obs="trace" if args.trace else "aggregate", **kw)
    for row in result.output:
        print(*row, file=out)
    if args.trace:
        from .obs import write_trace
        write_trace(args.trace, result.trace)
        print(f"trace written to {args.trace} "
              f"({len(result.trace)} events)", file=out)
    print(f"[{args.mode}] {result.cycles:,.0f} cycles on {args.cmps} CMPs",
          file=out)
    if result.faults is not None:
        print(f"  chaos: seed {args.chaos_seed}, "
              f"{len(result.faults['fired'])} injection(s), "
              f"{len(result.recoveries)} recovery(ies)", file=out)
    if args.stats:
        for cat, frac in sorted(result.breakdown_fractions().items(),
                                key=lambda kv: -kv[1]):
            print(f"  {cat:<12} {frac:6.3f}", file=out)
        if args.mode == "slipstream":
            for kind in ("read", "rdex"):
                brk = result.classes.breakdown(kind)
                row = " ".join(f"{k}={v:.2f}" for k, v in brk.items() if v)
                print(f"  {kind:<5} fills: {row}", file=out)
            if result.recoveries:
                print(f"  recoveries: {len(result.recoveries)}", file=out)
    return 0


def _cmd_profile_run(args, out) -> int:
    source = open(args.file).read()
    image = compile_source(source)
    cfg = PAPER_MACHINE.with_(n_cmps=args.cmps)
    result = run_program(image, cfg=cfg, mode=args.mode,
                         env=_env_from_args(args), inputs=args.inputs,
                         obs="profile")
    for row in result.output:
        print(*row, file=out)
    print(f"[{args.mode}] {result.cycles:,.0f} cycles on {args.cmps} CMPs",
          file=out)
    from .harness import profile_table, profile_to_csv
    from .obs import profile_total
    print(profile_table(result.profile, top=args.top,
                        title=f"hot lines ({args.file})"), file=out)
    print(f"total profiled: {profile_total(result.profile):,.0f} "
          f"simulated cycles across {len(result.profile)} tracks",
          file=out)
    if args.collapsed:
        from .obs import collapsed_stacks, write_collapsed
        stacks = collapsed_stacks(result.profile, label=args.mode)
        write_collapsed(args.collapsed, stacks)
        print(f"collapsed stacks written to {args.collapsed} "
              f"({len(stacks)} lines)", file=out)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(profile_to_csv(result.profile))
        print(f"per-line CSV written to {args.csv}", file=out)
    return 0


def _cmd_compile(args, out) -> int:
    image = compile_source(open(args.file).read())
    print(f"{args.file}: {len(image.globals)} shared globals, "
          f"{len(image.funcs)} functions "
          f"({sum(1 for f in image.funcs if f.is_region)} outlined "
          f"regions), {image.n_instructions} instructions, "
          f"{len(image.sites)} synchronization sites", file=out)
    if args.disasm:
        for code in image.funcs:
            print(file=out)
            print(disassemble(code), file=out)
    return 0


def _cmd_check(args, out) -> int:
    program = parse(open(args.file).read())
    info = analyze(program)
    print(f"{args.file}: {len(info.globals)} shared globals, "
          f"{len(info.funcs)} functions, {len(info.regions)} parallel "
          f"regions", file=out)
    for i, region in enumerate(info.regions):
        print(f"  region {i} (in {region.func}, line {region.line}):",
              file=out)
        print(f"    shared refs : {sorted(region.shared_refs)}", file=out)
        print(f"    private     : {sorted(region.private)}", file=out)
        if region.firstprivate:
            print(f"    firstprivate: {sorted(region.firstprivate)}",
                  file=out)
        if region.captured:
            print(f"    captured    : {sorted(region.captured)}", file=out)
        for red in region.reductions:
            print(f"    reduction   : {red.op}: {red.names}", file=out)
        for s in region.schedules:
            print(f"    schedule    : {s.kind}"
                  f"{',' + str(s.chunk) if s.chunk else ''}", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    from .npb import REGISTRY
    _setup_logging(args)
    names = args.names or sorted(REGISTRY)
    bad = [n for n in names if n not in REGISTRY]
    if bad:
        print(f"unknown benchmark(s): {bad}", file=sys.stderr)
        return 2
    cfg = PAPER_MACHINE.with_(n_cmps=args.cmps)
    if args.trace and args.profile:
        print("--trace and --profile are mutually exclusive",
              file=sys.stderr)
        return 2
    kw = {}
    if args.trace:
        kw["obs"] = "trace"
    elif args.profile:
        kw["obs"] = "profile"
    if args.chaos_seed is not None:
        from .faults import FaultConfig
        kw["faults"] = FaultConfig(args.chaos_seed)
    if args.timeout_cycles is not None:
        kw["timeout_cycles"] = args.timeout_cycles
    context = _pipeline_from_args(args)
    suite = run_static_suite(cfg=cfg, size=args.size, benchmarks=names,
                             context=context, **kw)
    print(render_speedups(
        suite, title=f"mini-NPB ({args.size} size, {args.cmps} CMPs)"),
        file=out)
    from .harness import render_pipeline
    print(render_pipeline(context), file=out)
    if args.trace:
        from .obs import merge_traces, write_trace
        items = [(f"{bench}:{cfg_name}", run.result.trace)
                 for bench, runs in suite.items()
                 for cfg_name, run in runs.items()
                 if run.result.trace is not None]
        merged = merge_traces(items)
        write_trace(args.trace, merged)
        print(f"trace written to {args.trace} ({len(merged)} events, "
              f"{len(items)} runs)", file=out)
    if args.profile:
        from .harness import profile_table
        from .obs import collapsed_stacks, write_collapsed
        combined = {}
        stacks = []
        n_runs = 0
        for bench, runs in suite.items():
            for cfg_name, run in runs.items():
                p = run.result.profile
                if not p:
                    continue
                n_runs += 1
                stacks.extend(
                    collapsed_stacks(p, label=f"{bench}:{cfg_name}"))
                for track, data in p.items():
                    combined[f"{bench}:{cfg_name}:{track}"] = data
        write_collapsed(args.profile, stacks)
        print(profile_table(combined, title="hot lines (all runs)"),
              file=out)
        print(f"collapsed stacks written to {args.profile} "
              f"({len(stacks)} lines, {n_runs} runs)", file=out)
    _finish_telemetry(args, context, out)
    return _report_health(context)


def _report_health(context) -> int:
    """Surface transport health as distinct exit codes (see the module
    docstring's table): 5 when the sweep completed with quarantined
    poison units -- their merged rows are loud placeholder failures,
    not results -- and 3 for pool degradation (every result produced,
    -j parallelism lost).  Quarantine wins: lost results outrank lost
    parallelism."""
    quarantined = getattr(context, "quarantined", False)
    degraded = getattr(context, "degraded", False)
    if not (quarantined or degraded):
        return 0
    for ev in getattr(context, "events", []):
        print(f"warning: {ev}", file=sys.stderr)
    if quarantined:
        units = getattr(context, "quarantined_units", [])
        print(f"warning: sweep completed with {len(units) or 'some'} "
              f"quarantined poison unit(s); their rows are placeholder "
              f"failures, not results", file=sys.stderr)
        return 5
    print("warning: process pool degraded to serial execution; results "
          "are complete but -j parallelism was lost", file=sys.stderr)
    return 3


def _cmd_worker(args, out) -> int:
    from .harness import run_worker
    _setup_logging(args)
    run_worker(args.dir, poll_s=args.poll, lease_s=args.lease,
               max_units=args.max_units, drain=not args.wait, out=out)
    return 0


def _cmd_status(args, out) -> int:
    """Render fleet state from a spool's on-disk traces; exit 1 when
    the fleet is stalled so scripts/watchdogs can alarm on it."""
    from .harness import collect_status, render_status
    status = collect_status(args.dir, stall_s=args.stall)
    if args.json:
        import json
        print(json.dumps(status.to_json(), indent=2), file=out)
    else:
        print(render_status(status), file=out)
    return 1 if status.stalled else 0


def _cmd_chaos(args, out) -> int:
    from .harness.chaos import (CHAOS_BENCHMARKS, DEFAULT_TIMEOUT_CYCLES,
                                chaos_specs, render_chaos, run_chaos)
    from .npb import REGISTRY
    _setup_logging(args)
    if args.harness:
        return _cmd_harness_chaos(args, out)
    names = tuple(args.names) or CHAOS_BENCHMARKS
    bad = [n for n in names if n not in REGISTRY]
    if bad:
        print(f"unknown benchmark(s): {bad}", file=sys.stderr)
        return 2
    classes = ([tuple(args.classes.split(","))] if args.classes else None)
    if classes:
        from .faults import FAULT_CLASSES
        bad_cls = [c for c in classes[0] if c not in FAULT_CLASSES]
        if bad_cls:
            print(f"unknown fault class(es): {bad_cls} (choose from "
                  f"{', '.join(FAULT_CLASSES)})", file=sys.stderr)
            return 2
    specs = chaos_specs(
        benchmarks=names, seeds=args.seeds, base_seed=args.chaos_seed,
        classes=classes, size=args.size,
        cfg=PAPER_MACHINE.with_(n_cmps=args.cmps),
        timeout_cycles=args.timeout_cycles or DEFAULT_TIMEOUT_CYCLES)
    context = _pipeline_from_args(args)
    report = run_chaos(specs, context=context)
    print(render_chaos(report, title=f"chaos matrix ({args.size} size, "
                                     f"{args.cmps} CMPs)"), file=out)
    from .harness import render_pipeline
    print(render_pipeline(context), file=out)
    if args.report:
        import json
        with open(args.report, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
        print(f"report written to {args.report}", file=out)
    _finish_telemetry(args, context, out)
    if not report.ok:
        failed = [o for o in report.outcomes if not o.ok]
        print(f"error: {len(failed)} of {len(report.outcomes)} scenarios "
              f"violated the fault-tolerance invariant "
              f"({', '.join(sorted({o.status for o in failed}))})",
              file=sys.stderr)
        return 1
    return _report_health(context)


def _cmd_harness_chaos(args, out) -> int:
    """``repro chaos --harness``: the pipeline crash-consistency matrix
    (:func:`repro.harness.chaos.run_harness_chaos`).  Exit 1 when any
    scenario loses or corrupts a result, 5 when the matrix itself
    quarantined poison units, 0 on a clean pass."""
    import json
    import tempfile

    from .harness.chaos import (HARNESS_TRANSPORTS, render_harness_chaos,
                                run_harness_chaos)
    from .harness.hazards import HAZARD_CLASSES
    from .npb import REGISTRY
    names = tuple(args.names) or ("cg",)
    bad = [n for n in names if n not in REGISTRY]
    if bad:
        print(f"unknown benchmark(s): {bad}", file=sys.stderr)
        return 2
    transports = (tuple(t.strip() for t in args.transports.split(","))
                  if args.transports else HARNESS_TRANSPORTS)
    bad_t = [t for t in transports if t not in HARNESS_TRANSPORTS]
    if bad_t:
        print(f"unknown transport(s): {bad_t} (choose from "
              f"{', '.join(HARNESS_TRANSPORTS)})", file=sys.stderr)
        return 2
    classes = ([tuple(args.classes.split(","))] if args.classes else None)
    if classes:
        bad_cls = [c for c in classes[0] if c not in HAZARD_CLASSES]
        if bad_cls:
            print(f"unknown hazard class(es): {bad_cls} (choose from "
                  f"{', '.join(HAZARD_CLASSES)})", file=sys.stderr)
            return 2
    workdir = args.workdir or tempfile.mkdtemp(
        prefix="repro-harness-chaos-")
    report = run_harness_chaos(
        workdir, benchmarks=names, size=args.size,
        cfg=PAPER_MACHINE.with_(n_cmps=args.cmps),
        transports=transports, classes=classes,
        base_seed=args.chaos_seed, jobs=max(args.jobs, 2))
    print(render_harness_chaos(
        report, title=f"harness chaos matrix ({args.size} size, "
                      f"{args.cmps} CMPs)"), file=out)
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_json(), fh, indent=2)
        print(f"report written to {args.report}", file=out)
    if not report.ok:
        failed = [o for o in report.outcomes if not o.ok]
        print(f"error: {len(failed)} of {len(report.outcomes)} harness "
              f"scenario(s) violated the crash-consistency invariant",
              file=sys.stderr)
        return 1
    if report.total_quarantined:
        print(f"warning: {report.total_quarantined} poison unit(s) were "
              f"quarantined during the matrix", file=sys.stderr)
        return 5
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.cmd == "run":
            return _cmd_run(args, out)
        if args.cmd == "profile":
            return _cmd_profile_run(args, out)
        if args.cmd == "compile":
            return _cmd_compile(args, out)
        if args.cmd == "check":
            return _cmd_check(args, out)
        if args.cmd == "bench":
            return _cmd_bench(args, out)
        if args.cmd == "worker":
            return _cmd_worker(args, out)
        if args.cmd == "status":
            return _cmd_status(args, out)
        if args.cmd == "chaos":
            return _cmd_chaos(args, out)
    except CompileError as e:
        print(f"compile error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    except SimDeadlockError as e:
        # One actionable line, not a traceback: which run, how far it
        # got, and that --timeout-cycles / the deadlock detector fired.
        print(f"error: {e.summary}", file=sys.stderr)
        print("hint: raise --timeout-cycles if the run just needs more "
              "budget; e.blocked (SimDeadlockError) lists every blocked "
              "process and what it is waiting on", file=sys.stderr)
        return 4


if __name__ == "__main__":
    raise SystemExit(main())
