"""Contention primitives built on the event engine.

Three shapes of contention appear in the simulated machine:

* :class:`Server` -- a FIFO-queued service center (a bus, a network port,
  a directory/memory controller).  A request occupies the server for a
  fixed service time; queueing delay is the contention the paper models
  "at the network inputs and outputs, and at the memory controller".
* :class:`Semaphore` -- counting semaphore; the substrate for the
  slipstream token semaphore and the syscall semaphore.
* :class:`Mutex` -- binary convenience wrapper.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .engine import Engine, SimEvent, SimulationError

__all__ = ["Server", "Semaphore", "Mutex"]


class Server:
    """A FIFO service center with a fixed number of identical units.

    ``yield from server.serve(duration)`` models "occupy one unit for
    ``duration`` time, queueing behind earlier arrivals if all units are
    busy".  Utilization and queueing statistics are tracked so harnesses
    can report contention.
    """

    __slots__ = ("engine", "name", "units", "_busy", "_waiters",
                 "total_requests", "total_service", "total_queue_wait",
                 "max_queue_len", "faults", "busy_until")

    def __init__(self, engine: Engine, name: str, units: int = 1):
        if units < 1:
            raise SimulationError(f"server {name!r} needs >=1 unit")
        self.engine = engine
        self.name = name
        self.units = units
        self._busy = 0
        self._waiters: Deque[SimEvent] = deque()
        self.total_requests = 0
        self.total_service = 0.0
        self.total_queue_wait = 0.0
        self.max_queue_len = 0
        #: FaultPlan (armed on network-interface servers only): adds
        #: bounded, protocol-legal jitter to scheduled serve() calls.
        #: None = injection off; the hook is one attribute test.
        self.faults = None
        #: End of the latest reserved occupancy window (see reserve()).
        self.busy_until = 0.0

    def idle_at(self, now: float) -> bool:
        """True when a unit is free, nobody queues, and no reservation
        extends past ``now`` -- the fast-path eligibility probe."""
        return (self._busy == 0 and not self._waiters
                and self.busy_until <= now)

    def reserve(self, start: float, length: float) -> None:
        """Book one unit for ``[start, start + length)`` synchronously.

        The memory fast path charges a planned, uncontended occupancy
        window without a queue turn: request/service statistics match a
        ``serve()`` over the same window exactly, and ``busy_until``
        advertises the reservation horizon so later planners -- and
        ``serve`` itself -- still see the contention the window
        represents.  Callers must guarantee the window is genuinely
        uncontended (``idle_at(start)`` plus engine quiescence through
        ``start + length``); reservations have no release event."""
        self.total_requests += 1
        self.total_service += length
        end = start + length
        if end > self.busy_until:
            self.busy_until = end

    def serve(self, duration: float):
        """Generator: acquire a unit, hold it for ``duration``, release."""
        if self.faults is not None:
            extra = self.faults.fire("net_jitter", self.name)
            if extra is not None:
                # Injected network jitter: the message is merely slower,
                # never lost or reordered against the FIFO queue, so the
                # coherence protocol's correctness is untouched.
                duration += extra
        self.total_requests += 1
        start = self.engine.now
        if self._busy >= self.units:
            gate = self.engine.event(name=f"{self.name}.q")
            self._waiters.append(gate)
            self.max_queue_len = max(self.max_queue_len, len(self._waiters))
            try:
                yield gate
            except BaseException:
                # Interrupted while queued: withdraw the request -- or, if
                # the unit was already handed to us, pass it on.
                try:
                    self._waiters.remove(gate)
                except ValueError:
                    self._release()
                raise
        else:
            self._busy += 1
        if self.engine.now < self.busy_until:
            # A reservation is still pending on this unit: the request
            # waits it out as ordinary queueing delay.
            try:
                yield self.busy_until - self.engine.now
            except BaseException:
                self._release()
                raise
        self.total_queue_wait += self.engine.now - start
        try:
            if duration > 0:
                yield duration
            self.total_service += duration
        finally:
            self._release()

    def _release(self) -> None:
        if self._waiters:
            # Hand the unit straight to the next waiter; _busy stays put.
            self._waiters.popleft().fire()
        else:
            self._busy -= 1

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for a unit."""
        return len(self._waiters)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction over elapsed time."""
        t = elapsed if elapsed is not None else self.engine.now
        if t <= 0:
            return 0.0
        return self.total_service / (t * self.units)


class Semaphore:
    """Counting semaphore with FIFO waiters.

    This is the timing-level model of the "shared register between the
    two processors in a CMP" that implements slipstream token exchange:
    operations take zero simulated time by default (a shared hardware
    register), but a per-op latency can be configured.
    """

    __slots__ = ("engine", "name", "count", "_waiters", "op_latency",
                 "total_acquires", "total_releases", "total_wait_time")

    def __init__(self, engine: Engine, name: str, initial: int = 0,
                 op_latency: float = 0.0):
        if initial < 0:
            raise SimulationError("semaphore initial count must be >= 0")
        self.engine = engine
        self.name = name
        self.count = initial
        self._waiters: Deque[SimEvent] = deque()
        self.op_latency = op_latency
        self.total_acquires = 0
        self.total_releases = 0
        self.total_wait_time = 0.0

    def acquire(self):
        """Generator: wait until a unit is available, then take it."""
        self.total_acquires += 1
        start = self.engine.now
        if self.op_latency > 0:
            yield self.op_latency
        while self.count <= 0:
            gate = self.engine.event(name=f"{self.name}.sem")
            self._waiters.append(gate)
            try:
                yield gate
            except BaseException:
                try:
                    self._waiters.remove(gate)
                except ValueError:
                    pass
                raise
        self.count -= 1
        self.total_wait_time += self.engine.now - start

    def try_acquire(self) -> bool:
        """Non-blocking acquire (no simulated latency)."""
        if self.count > 0:
            self.count -= 1
            self.total_acquires += 1
            return True
        return False

    def release(self, n: int = 1) -> None:
        """Add ``n`` units and wake up to ``n`` waiters (zero time)."""
        if n < 1:
            raise SimulationError("release count must be >= 1")
        self.count += n
        self.total_releases += n
        for _ in range(min(n, len(self._waiters))):
            self._waiters.popleft().fire()

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)


class Mutex(Semaphore):
    """Binary semaphore: one holder at a time."""

    def __init__(self, engine: Engine, name: str, op_latency: float = 0.0):
        super().__init__(engine, name, initial=1, op_latency=op_latency)

    def release(self, n: int = 1) -> None:  # noqa: D102 - inherited docs
        """Release the mutex (error if it was free)."""
        if n != 1:
            raise SimulationError("mutex releases exactly one unit")
        if self.count >= 1:
            raise SimulationError(f"mutex {self.name!r} released while free")
        super().release(1)
