"""Contention primitives built on the event engine.

Three shapes of contention appear in the simulated machine:

* :class:`Server` -- a FIFO-queued service center (a bus, a network port,
  a directory/memory controller).  A request occupies the server for a
  fixed service time; queueing delay is the contention the paper models
  "at the network inputs and outputs, and at the memory controller".
* :class:`Semaphore` -- counting semaphore; the substrate for the
  slipstream token semaphore and the syscall semaphore.
* :class:`Mutex` -- binary convenience wrapper.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .engine import Engine, SimEvent, SimulationError, _PlanWake

__all__ = ["Server", "Semaphore", "Mutex"]


class _Window:
    """One booked occupancy window on a server's reservation timeline.

    ``arrival`` is the instant the planned transaction *would have
    requested* the unit in the pure-generator world -- it is the FIFO
    ordering key: a real ``serve()`` arriving later queues behind the
    window, while one arriving earlier preempts the owning plan (see
    ``Server._wait_windows``)."""

    __slots__ = ("server", "start", "end", "arrival", "plan", "leg")

    def __init__(self, server, start, end, arrival, plan, leg):
        self.server = server
        self.start = start
        self.end = end
        self.arrival = arrival
        self.plan = plan
        self.leg = leg


class Server:
    """A FIFO service center with a fixed number of identical units.

    ``yield from server.serve(duration)`` models "occupy one unit for
    ``duration`` time, queueing behind earlier arrivals if all units are
    busy".  Utilization and queueing statistics are tracked so harnesses
    can report contention.
    """

    __slots__ = ("engine", "name", "units", "_busy", "_waiters",
                 "total_requests", "total_service", "total_queue_wait",
                 "max_queue_len", "faults", "busy_until",
                 "_windows", "_window_waiters", "_win_naps", "_handoffs",
                 "_cur_end")

    def __init__(self, engine: Engine, name: str, units: int = 1):
        if units < 1:
            raise SimulationError(f"server {name!r} needs >=1 unit")
        self.engine = engine
        self.name = name
        self.units = units
        self._busy = 0
        self._waiters: Deque[SimEvent] = deque()
        self.total_requests = 0
        self.total_service = 0.0
        self.total_queue_wait = 0.0
        self.max_queue_len = 0
        #: FaultPlan (armed on network-interface servers only): adds
        #: bounded, protocol-legal jitter to scheduled serve() calls.
        #: None = injection off; the hook is one attribute test.
        self.faults = None
        #: End of the latest booked reservation window (informational
        #: high-water mark; the authoritative timeline is _windows).
        self.busy_until = 0.0
        #: Booked occupancy windows (the fast path's reservation
        #: timeline).  Empty whenever the ``mem`` hot-path tier is off.
        self._windows: list = []
        #: Real serves currently waiting out booked windows; free_at()
        #: declines while any exist (their completion order is theirs).
        self._window_waiters = 0
        #: Their parked wakes: a waiter sleeps *unscheduled* and is
        #: re-woken by append when a window completes or cancels -- the
        #: exact analogue of the FIFO gate handoff in the serve() queue,
        #: so the waiter's resumption keeps its generator-world position
        #: in the event order.
        self._win_naps: list = []
        #: Parked plan wakes chained behind in-flight occupancy:
        #: ``(handoff_instant, wake)`` pairs the occupancy's ender fires
        #: by append (see park_handoff), emulating the queue handoff the
        #: plan's generator twin would receive.
        self._handoffs: list = []
        #: End of the service interval in progress (set when a real
        #: serve starts its hold, None while the unit is in handoff),
        #: so free_at() can chain a window behind in-flight occupancy.
        self._cur_end: float = 0.0

    def idle_at(self, now: float) -> bool:
        """True when a unit is free, nobody queues, and no reservation
        extends past ``now`` -- the fast-path eligibility probe."""
        return (self._busy == 0 and not self._waiters and not self._windows
                and self.busy_until <= now)

    def free_at(self, arrival: float, length: float):
        """Earliest start >= ``arrival`` at which one unit could hold a
        ``length``-long window, given in-flight occupancy and already
        booked windows -- or None when the timeline is not decidable
        (queued waiters, a unit in handoff, jitter injection armed).

        FIFO-later windows (planned arrival after this one) do not
        chain: this request would be served *before* them, so it may
        gap-fit ahead -- but only when it fits entirely before every
        such window, since shifting a booked window is not allowed."""
        if (self.units != 1 or self._waiters or self._window_waiters
                or self.faults is not None):
            return None
        start = arrival
        if self._busy:
            end = self._cur_end
            if end is None:
                return None
            if end > start:
                start = end
        cap = None              # earliest start of any FIFO-later window
        for w in self._windows:
            if w.arrival > arrival:
                if cap is None or w.start < cap:
                    cap = w.start
            elif w.end > start:
                start = w.end
        if cap is not None and start + length > cap:
            return None
        return start

    def reserve(self, arrival: float, start: float, length: float,
                plan=None, leg: int = 0) -> _Window:
        """Book one unit for ``[start, start + length)``.

        Statistics match what a ``serve()`` arriving at ``arrival`` and
        served over the same window would charge: one request, the
        service time, and ``start - arrival`` of queueing delay.  The
        returned window stays on the timeline until the owning plan
        completes (or cancels) it; real ``serve()`` traffic queues
        behind it or preempts the plan according to arrival order."""
        self.total_requests += 1
        self.total_service += length
        self.total_queue_wait += start - arrival
        end = start + length
        if end > self.busy_until:
            self.busy_until = end
        w = _Window(self, start, end, arrival, plan, leg)
        self._windows.append(w)
        return w

    def complete(self, w: _Window) -> None:
        """Retire a fully-elapsed window (the owning plan's wake at its
        end), releasing the unit to whoever chained behind: parked
        handoff wakes and window-waiting serves resume by *append*,
        exactly where the generator twin's queue handoff would land
        them in the event order."""
        try:
            self._windows.remove(w)
        except ValueError:
            pass
        if self._handoffs:
            self._fire_handoffs(False)
        self._wake_naps()

    def cancel(self, w: _Window) -> None:
        """Un-book a window and refund the statistics a serve() over
        the unrendered part would not have charged."""
        try:
            self._windows.remove(w)
        except ValueError:
            return
        now = self.engine.now
        if w.end > now:
            self.total_service -= w.end - w.start
            if w.start >= now:
                # Never started rendering: the replacement serve
                # re-charges the request when it arrives.
                self.total_requests -= 1
                self.total_queue_wait -= w.start - w.arrival
        if self._handoffs:
            # The occupancy a parked plan chained behind may never end
            # the way it planned; convert future handoffs to scheduled
            # wakes at their instant (stale ones are dropped).
            self._fire_handoffs(True)
        self._wake_naps()

    def park_handoff(self, t: float, wake) -> None:
        """Park ``wake`` until the occupancy ending at ``t`` releases
        the unit; complete()/cancel()/_release() fire it by append."""
        self._handoffs.append((t, wake))

    def _fire_handoffs(self, all_future: bool) -> None:
        now = self.engine.now
        keep = []
        for t, wake in self._handoffs:
            if not wake.alive:
                continue                      # owner was preempted/unwound
            if t <= now:
                self.engine._schedule(wake, 0.0, None)
            elif all_future:
                self.engine._schedule(wake, t - now, None)
            else:
                keep.append((t, wake))
        self._handoffs[:] = keep

    def _wake_naps(self) -> None:
        """Re-wake window-waiting serves (they re-check the timeline)."""
        if self._win_naps:
            for nap in self._win_naps:
                if nap.alive:
                    nap.alive = False
                    self.engine._schedule(
                        _PlanWake(nap.proc, name=nap.name), 0.0, None)

    def _pending_release_at(self, t: float) -> bool:
        """True when some occupancy ends exactly at ``t`` but has not
        released yet (its end event is later in this instant's step
        order): a plan booking now must take a handoff wake, as its
        generator twin would queue and be resumed by that release."""
        if self._busy and self._cur_end == t:
            return True
        for w in self._windows:
            if w.end == t:
                return True
        return False

    def serve(self, duration: float):
        """Generator: acquire a unit, hold it for ``duration``, release."""
        if self.faults is not None:
            extra = self.faults.fire("net_jitter", self.name)
            if extra is not None:
                # Injected network jitter: the message is merely slower,
                # never lost or reordered against the FIFO queue, so the
                # coherence protocol's correctness is untouched.
                duration += extra
        self.total_requests += 1
        start = self.engine.now
        if self._busy >= self.units:
            gate = self.engine.event(name=f"{self.name}.q")
            self._waiters.append(gate)
            self.max_queue_len = max(self.max_queue_len, len(self._waiters))
            try:
                yield gate
            except BaseException:
                # Interrupted while queued: withdraw the request -- or, if
                # the unit was already handed to us, pass it on.
                try:
                    self._waiters.remove(gate)
                except ValueError:
                    self._release()
                raise
        else:
            self._busy += 1
        if self._windows:
            try:
                yield from self._wait_windows(start, duration)
            except BaseException:
                self._release()
                raise
        self.total_queue_wait += self.engine.now - start
        self._cur_end = self.engine.now + duration
        try:
            if duration > 0:
                yield duration
            self.total_service += duration
        finally:
            if self._windows:
                # An interrupted hold ends early: windows chained behind
                # the planned service end are now mispositioned (the
                # generator world would serve those plans right away),
                # so their owners replay the remainder for real.
                cur = self._cur_end
                now = self.engine.now
                if cur is not None and now < cur:
                    for w in [w for w in self._windows if w.start > now]:
                        w.plan.preempt(w.leg)
            self._release()
            if self._handoffs:
                self._fire_handoffs(False)

    def _wait_windows(self, arrival: float, duration: float):
        """Wait out booked windows that are FIFO-ahead of ``arrival``;
        preempt plans whose windows would collide with this FIFO-earlier
        service interval (their planned arrival is later than this real
        one, so the generator world would have served us first -- but a
        later window that starts after we would finish is untouched:
        its planned position is still exact)."""
        engine = self.engine
        self._window_waiters += 1
        try:
            while True:
                wins = self._windows
                if not wins:
                    return
                now = engine.now
                for w in [w for w in wins
                          if w.arrival > arrival
                          and w.start < now + duration]:
                    w.plan.preempt(w.leg)    # cancels w and later legs
                tend = arrival
                for w in self._windows:
                    if w.arrival <= arrival and w.end > tend:
                        tend = w.end
                if tend <= now:
                    return
                # Unscheduled nap: the owning plan's wake at a window's
                # end (complete) or a cancel re-wakes us by append -- a
                # pre-scheduled sleep would step us *earlier* in the end
                # instant's event order than the generator's queue
                # handoff would, perturbing same-instant FIFO ties.
                nap = _PlanWake(engine._current, name=f"{self.name}.winwait")
                self._win_naps.append(nap)
                try:
                    yield Engine.PAUSE
                finally:
                    nap.alive = False
                    try:
                        self._win_naps.remove(nap)
                    except ValueError:
                        pass
        finally:
            self._window_waiters -= 1

    def _release(self) -> None:
        if self._waiters:
            # Hand the unit straight to the next waiter; _busy stays put.
            # The service-end marker is unknown until the waiter starts
            # its own hold, so planners must not chain behind it.
            self._cur_end = None
            self._waiters.popleft().fire()
        else:
            self._busy -= 1

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for a unit."""
        return len(self._waiters)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Busy fraction over elapsed time."""
        t = elapsed if elapsed is not None else self.engine.now
        if t <= 0:
            return 0.0
        return self.total_service / (t * self.units)


class Semaphore:
    """Counting semaphore with FIFO waiters.

    This is the timing-level model of the "shared register between the
    two processors in a CMP" that implements slipstream token exchange:
    operations take zero simulated time by default (a shared hardware
    register), but a per-op latency can be configured.
    """

    __slots__ = ("engine", "name", "count", "_waiters", "op_latency",
                 "total_acquires", "total_releases", "total_wait_time")

    def __init__(self, engine: Engine, name: str, initial: int = 0,
                 op_latency: float = 0.0):
        if initial < 0:
            raise SimulationError("semaphore initial count must be >= 0")
        self.engine = engine
        self.name = name
        self.count = initial
        self._waiters: Deque[SimEvent] = deque()
        self.op_latency = op_latency
        self.total_acquires = 0
        self.total_releases = 0
        self.total_wait_time = 0.0

    def acquire(self):
        """Generator: wait until a unit is available, then take it."""
        self.total_acquires += 1
        start = self.engine.now
        if self.op_latency > 0:
            yield self.op_latency
        while self.count <= 0:
            gate = self.engine.event(name=f"{self.name}.sem")
            self._waiters.append(gate)
            try:
                yield gate
            except BaseException:
                try:
                    self._waiters.remove(gate)
                except ValueError:
                    pass
                raise
        self.count -= 1
        self.total_wait_time += self.engine.now - start

    def try_acquire(self) -> bool:
        """Non-blocking acquire (no simulated latency)."""
        if self.count > 0:
            self.count -= 1
            self.total_acquires += 1
            return True
        return False

    def release(self, n: int = 1) -> None:
        """Add ``n`` units and wake up to ``n`` waiters (zero time)."""
        if n < 1:
            raise SimulationError("release count must be >= 1")
        self.count += n
        self.total_releases += n
        for _ in range(min(n, len(self._waiters))):
            self._waiters.popleft().fire()

    @property
    def waiting(self) -> int:
        """Number of blocked acquirers."""
        return len(self._waiters)


class Mutex(Semaphore):
    """Binary semaphore: one holder at a time."""

    def __init__(self, engine: Engine, name: str, op_latency: float = 0.0):
        super().__init__(engine, name, initial=1, op_latency=op_latency)

    def release(self, n: int = 1) -> None:  # noqa: D102 - inherited docs
        """Release the mutex (error if it was free)."""
        if n != 1:
            raise SimulationError("mutex releases exactly one unit")
        if self.count >= 1:
            raise SimulationError(f"mutex {self.name!r} released while free")
        super().release(1)
