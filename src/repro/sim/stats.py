"""Statistics collection: counters and exclusive time-category clocks.

The paper's Figures 2 and 4 break execution time into busy cycles, memory
stalls, lock time, barrier time, scheduling time, and job-wait time.
:class:`TimeBreakdown` implements that accounting as a stack of exclusive
categories: a processor is always "in" exactly one category, and nested
activities (e.g. a memory stall while spinning on a lock) attribute their
time to the innermost category.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["Counter", "TimeBreakdown", "CATEGORIES"]

#: Display order for the paper's execution-time categories.
CATEGORIES: Tuple[str, ...] = (
    "busy", "memory", "lock", "barrier", "scheduling", "jobwait",
    "a_wait", "io", "idle",
)


class Counter:
    """A named bag of integer counters."""

    def __init__(self):
        self._c: Dict[str, int] = {}

    def add(self, key: str, n: int = 1) -> None:
        """Increment a named counter."""
        self._c[key] = self._c.get(key, 0) + n

    def get(self, key: str) -> int:
        """Read a named counter (0 if absent)."""
        return self._c.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot all counters."""
        return dict(self._c)

    def merge(self, other: "Counter") -> None:
        """Accumulate another counter bag."""
        for k, v in other._c.items():
            self.add(k, v)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._c.items()))
        return f"Counter({body})"


class TimeBreakdown:
    """Exclusive time accounting with a category stack.

    Usage from a processor coroutine::

        bd.push("barrier", now)      # entering barrier code
        ...                          # time accrues to "barrier"
        bd.push("memory", now)       # a miss inside the barrier spin
        ...                          # time accrues to "memory"
        bd.pop(now)                  # back to "barrier"
        bd.pop(now)                  # back to whatever was below

    The base category (when the stack is empty) is ``busy``.
    """

    __slots__ = ("_times", "_stack", "_last", "_closed")

    def __init__(self, start: float = 0.0):
        self._times: Dict[str, float] = {}
        self._stack: List[str] = []
        self._last = start
        self._closed = False

    # -- internals -----------------------------------------------------------

    def _settle(self, now: float) -> None:
        cat = self._stack[-1] if self._stack else "busy"
        dt = now - self._last
        if dt < 0:
            raise ValueError(f"time went backwards: {self._last} -> {now}")
        if dt:
            self._times[cat] = self._times.get(cat, 0.0) + dt
        self._last = now

    # -- public API ------------------------------------------------------------

    def push(self, category: str, now: float) -> None:
        """Enter a category (settling elapsed time first)."""
        self._settle(now)
        self._stack.append(category)

    def pop(self, now: float) -> str:
        """Leave the current category; returns its name."""
        self._settle(now)
        if not self._stack:
            raise ValueError("pop on empty category stack")
        return self._stack.pop()

    def switch(self, category: str, now: float) -> None:
        """Replace the top of the stack (settling time first)."""
        self._settle(now)
        if self._stack:
            self._stack[-1] = category
        else:
            self._stack.append(category)

    def close(self, now: float) -> None:
        """Finalize accounting at ``now`` (end of simulation)."""
        self._settle(now)
        self._stack.clear()
        self._closed = True

    @property
    def current(self) -> str:
        """Innermost active category ('busy' at depth 0)."""
        return self._stack[-1] if self._stack else "busy"

    @property
    def depth(self) -> int:
        """Category-stack depth."""
        return len(self._stack)

    def total(self) -> float:
        """Sum of all attributed time."""
        return sum(self._times.values())

    def get(self, category: str) -> float:
        """Time attributed to one category."""
        return self._times.get(category, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of category -> time."""
        return dict(self._times)

    def fractions(self) -> Dict[str, float]:
        """Category shares of the total (empty if no time)."""
        tot = self.total()
        if tot <= 0:
            return {}
        return {k: v / tot for k, v in self._times.items()}

    @staticmethod
    def aggregate(parts: Iterable["TimeBreakdown"]) -> Dict[str, float]:
        """Sum categories across processors (for machine-wide breakdowns)."""
        out: Dict[str, float] = {}
        for p in parts:
            for k, v in p._times.items():
                out[k] = out.get(k, 0.0) + v
        return out
