"""Compatibility shim: the statistics primitives live in ``repro.obs``.

``Counter`` and ``TimeBreakdown`` (plus the ``CATEGORIES`` display
order) moved to :mod:`repro.obs.aggregate` when all instrumentation was
unified under the observability layer.  This module keeps the historical
import path working; new code should import from :mod:`repro.obs`.
"""

from ..obs.aggregate import CATEGORIES, Counter, TimeBreakdown

__all__ = ["Counter", "TimeBreakdown", "CATEGORIES"]
