"""Discrete-event simulation engine.

The engine drives *processes* -- plain Python generators that yield
:class:`SimEvent` objects (resume when the event fires) or non-negative
numbers (resume after that many simulated time units).  Sub-routines
compose with ``yield from``, so a simulated CPU can call into a runtime
library which calls into a coherence protocol, all sharing one generator
stack.

Determinism: events scheduled for the same timestamp are processed in
scheduling order, so repeated runs of the same configuration produce
identical cycle counts.  Two queue disciplines implement that same
total order (see ``Engine``): a calendar/bucket queue (the default)
and a ``heapq`` of ``(time, seq, proc, value)`` tuples kept as the
``REPRO_HOTPATH`` ablation reference.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..hotpath import hotpath_enabled
from ..obs.probe import NULL_PROBE, Probe

__all__ = ["SimEvent", "Process", "Engine", "SimulationError", "Interrupt"]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double fire, deadlock, ...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    Used by slipstream recovery to abort a diverged A-stream mid-wait.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event processes can wait on.

    An event is *fired* at most once, optionally with a value; every
    process waiting on it is resumed at the fire time and receives the
    value as the result of its ``yield``.
    """

    __slots__ = ("engine", "fired", "value", "_waiters", "_callbacks",
                 "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.fired = False
        self.value: Any = None
        self._waiters: list["Process"] = []
        self._callbacks: Optional[list] = None
        self.name = name

    def fire(self, value: Any = None, delay: float = 0.0) -> None:
        """Fire the event ``delay`` time units from now."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        schedule = self.engine._schedule
        for proc in self._waiters:
            schedule(proc, delay, value)
        self._waiters.clear()
        if self._callbacks:
            callbacks, self._callbacks = self._callbacks, None
            for cb in callbacks:
                cb(value, delay)

    def add_callback(self, cb: Callable[[Any, float], None]) -> None:
        """Invoke ``cb(value, delay)`` synchronously when this event
        fires (after its waiting processes have been scheduled).

        Unlike a waiting process, a callback costs no queue turn --
        this is what lets :meth:`Engine.all_of` track N events without
        spawning N watcher processes.  On an already-fired event the
        callback runs immediately."""
        if self.fired:
            cb(self.value, 0.0)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def _subscribe(self, proc: "Process") -> None:
        if self.fired:
            # Late subscription: resume immediately with the stored value.
            self.engine._schedule(proc, 0.0, self.value)
        else:
            self._waiters.append(proc)

    def remove_waiter(self, proc: "Process") -> bool:
        """Stop ``proc`` from being resumed by this event.  Returns True
        if the process was actually waiting here."""
        try:
            self._waiters.remove(proc)
            return True
        except ValueError:
            return False


class Process:
    """A running generator coroutine inside the engine."""

    __slots__ = ("engine", "gen", "name", "alive", "done_event", "result",
                 "_waiting_on", "_pending_interrupt", "footprint")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "",
                 footprint: Optional[tuple] = None):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.done_event = SimEvent(engine, name=f"done:{name}")
        self._waiting_on: Optional[SimEvent] = None
        self._pending_interrupt: Optional[Interrupt] = None
        #: Declared interference footprint: the directory lines this
        #: process may lock or transition, () when it provably touches
        #: none, or None when unknown (the conservative default).  The
        #: memory fast path's contention forecast reads these through
        #: :meth:`Engine.pending_lines`.
        self.footprint = footprint

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.alive:
            return
        self._pending_interrupt = Interrupt(cause)
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        # Resume (the interrupt is delivered in _step).
        self.engine._schedule(self, 0.0, None)

    def kill(self) -> None:
        """Terminate the process without running any more of its body."""
        if not self.alive:
            return
        self.alive = False
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.gen.close()
        if not self.done_event.fired:
            self.done_event.fire(None)

    def _step(self, sendval: Any) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if self._pending_interrupt is not None:
                exc = self._pending_interrupt
                self._pending_interrupt = None
                cmd = self.gen.throw(exc)
            else:
                cmd = self.gen.send(sendval)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self.done_event.fire(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: it dies quietly.
            self.alive = False
            self.done_event.fire(None)
            return
        self._dispatch(cmd)

    def _dispatch(self, cmd: Any) -> None:
        if isinstance(cmd, SimEvent):
            self._waiting_on = cmd
            cmd._subscribe(self)
        elif isinstance(cmd, (int, float)):
            if cmd < 0:
                raise SimulationError(f"negative delay {cmd!r} from {self.name}")
            self.engine._schedule(self, float(cmd), None)
        elif cmd is None:
            self.engine._schedule(self, 0.0, None)
        elif cmd is Engine.PAUSE:
            # Park: the process is resumed by a _PlanWake entry (or an
            # interrupt) that someone scheduled before yielding PAUSE.
            pass
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command {cmd!r}")


class _TimerFire:
    """Queue entry that fires an event when its time comes.

    Duck-types the slice of :class:`Process` the drain loop touches
    (``alive``, ``name``, ``_step``), so ``Engine.timeout_event`` can
    place the fire directly in the queue instead of spawning a
    ``timer:`` shim process (and its generator) per timeout."""

    __slots__ = ("evt", "name")

    alive = True
    footprint = None

    def __init__(self, evt: "SimEvent", name: str):
        self.evt = evt
        self.name = name

    def _step(self, value: Any) -> None:
        self.evt.fire(value)


class _PlanWake:
    """A killable, re-schedulable resumption for a PAUSE-parked process.

    The memory fast path sleeps through its planned occupancy windows by
    scheduling one of these and yielding :data:`Engine.PAUSE`.  Unlike a
    plain numeric yield, the pending resumption can be *cancelled*
    (``alive = False``) and re-issued at a different time with a
    different value -- which is how a preempted plan is woken early at
    its last still-valid leg boundary.  Duck-types the queue-entry slice
    the drain loops touch (``alive``, ``name``, ``_step``)."""

    __slots__ = ("proc", "name", "alive")

    footprint = None

    def __init__(self, proc: "Process", name: str = "planwake"):
        self.proc = proc
        self.name = name
        self.alive = True

    def _step(self, value: Any) -> None:
        if self.proc.alive:
            # The resumed process may issue a fresh miss in this same
            # step; keep _current pointing at it, not at this entry.
            self.proc.engine._current = self.proc
            self.proc._step(value)


class Engine:
    """The event loop: a clock plus an ordered queue of resumptions.

    Two queue disciplines produce the identical resumption order:

    * **calendar/bucket queue** (default): a dict of timestamp ->
      FIFO bucket plus a small heap of *distinct* timestamps.  Same-time
      entries append to an existing bucket for O(1) -- no heap push, no
      tuple comparison -- which is the common case on the simulator's
      zero-delay cascades; only the first entry per distinct timestamp
      pays a heap operation.  Non-integer times need no special case:
      buckets are keyed by the exact float timestamp.
    * **heapq fallback** (``REPRO_HOTPATH`` without ``engine``, or
      ``use_buckets=False``): the original ``(time, seq, proc, value)``
      heap, kept as the ablation/property-test reference.

    Both orders are "time, then scheduling order": a bucket's FIFO *is*
    seq order because ``_schedule`` appends monotonically.
    """

    #: Yield this sentinel to park the current process: it is resumed
    #: only by a :class:`_PlanWake` entry (or an interrupt) arranged
    #: before yielding.  Used by the memory fast path's plan sleeps.
    PAUSE = object()

    def __init__(self, obs: Probe = NULL_PROBE,
                 use_buckets: Optional[bool] = None):
        self.now: float = 0.0
        self._seq = 0
        self._nprocs = 0
        self.obs = obs
        self.trace_hook: Optional[Callable[[float, Process], None]] = None
        # The queue entry being stepped right now (a Process, _TimerFire
        # or _PlanWake).  The memory fast path reads it to learn which
        # process a plan must park and re-wake.
        self._current: Any = None
        # Per-bucket footprint summaries for pending_lines(), memoized
        # by (timestamp, bucket length): buckets are append-only until
        # drained, so a summary stays valid while the length matches.
        self._fp_cache: dict = {}
        if use_buckets is None:
            use_buckets = hotpath_enabled("engine")
        self.use_buckets = use_buckets
        if use_buckets:
            self._buckets: dict = {}     # time -> list[(proc, value)]
            self._times: list = []       # heap of distinct bucket times
            # The bucket being drained right now.  It is popped from
            # ``_buckets``/``_times`` wholesale, then walked by index;
            # entries scheduled *at* its timestamp while it drains land
            # in a fresh dict bucket and are reached afterwards --
            # exactly the (time, seq) order of the heap discipline.
            self._cur: Optional[list] = None
            self._cur_t: float = 0.0
            self._cur_i: int = 0
            # Bind the hot entry points once; SimEvent.fire and
            # Process._dispatch go through these attributes.
            self._schedule = self._schedule_bucket
            self.step = self._step_bucket
        else:
            self._queue: list = []       # (time, seq, proc, value)
            self._schedule = self._schedule_heap
            self.step = self._step_heap

    # -- process management -------------------------------------------------

    def process(self, gen: Generator, name: str = "",
                delay: float = 0.0,
                footprint: Optional[tuple] = None) -> Process:
        """Register a generator as a process, starting ``delay`` time
        units from now (default: the current time).  ``footprint``
        declares the directory lines the process may touch (see
        :class:`Process`)."""
        proc = Process(self, gen, name=name or f"proc{self._nprocs}",
                       footprint=footprint)
        self._nprocs += 1
        self.obs.count("engine.processes")
        self._schedule(proc, delay, None)
        return proc

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh one-shot event."""
        self.obs.count("engine.events")
        return SimEvent(self, name=name)

    def timeout_event(self, delay: float, value: Any = None,
                      name: str = "") -> SimEvent:
        """An event that fires by itself ``delay`` from now.

        The fire is scheduled directly in the queue (a
        :class:`_TimerFire` entry) -- no shim process, no generator,
        and no extra queue turn at the current time.  As before, the
        event itself is not counted under ``engine.events`` (it is
        engine-internal, like a process's done_event)."""
        evt = SimEvent(self, name=name)
        self._schedule(_TimerFire(evt, f"timer:{name}"), delay, value)
        return evt

    def all_of(self, events: Iterable[SimEvent], name: str = "") -> SimEvent:
        """Event that fires once every input event has fired.

        Tracked with direct subscriber callbacks -- O(1) bookkeeping
        per input event instead of one watcher process each.  Fire
        ordering is preserved: when the last input fires, a single shim
        process is scheduled at that firing's resume time (exactly
        where the last watcher's resumption used to sit in the queue),
        and the output event fires when it runs."""
        events = list(events)
        out = self.event(name=name or "all_of")
        pending = [e for e in events if not e.fired]
        if not pending:
            out.fire([e.value for e in events])
            return out
        remaining = [len(pending)]

        def on_fire(_value, delay):
            remaining[0] -= 1
            if remaining[0] == 0:
                self.process(
                    _fire_later(out, 0.0, [e.value for e in events]),
                    name="all_of.fire", delay=delay)

        for e in pending:
            e.add_callback(on_fire)
        return out

    # -- scheduling ---------------------------------------------------------

    def _schedule_bucket(self, proc, delay: float, value: Any) -> None:
        # Innermost write of the whole simulator.  The common case --
        # another entry already exists at this timestamp -- is one dict
        # probe plus one list append; only a fresh timestamp pays a
        # heap push, and nothing ever pays a tuple comparison.  The
        # currently draining bucket is *not* in the dict, so same-time
        # entries scheduled during a drain start a new bucket that is
        # reached after it -- preserving scheduling order.
        t = self.now + delay
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [(proc, value)]
            heapq.heappush(self._times, t)
        else:
            b.append((proc, value))

    def _schedule_heap(self, proc, delay: float, value: Any) -> None:
        # Reference discipline: one attribute store + one heap push.
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, proc, value))

    def next_time(self) -> Optional[float]:
        """Earliest queued resumption time (``None`` on an empty queue).

        Dead entries count: like the queue head in the heap discipline,
        the front may belong to a killed process that will be skipped.
        The memory fast path uses this for its quiescence precondition.
        """
        if self.use_buckets:
            cur = self._cur
            if cur is not None and self._cur_i < len(cur):
                return self._cur_t      # draining bucket still has entries
            times = self._times
            return times[0] if times else None
        q = self._queue
        return q[0][0] if q else None

    def pending_lines(self, deadline: float) -> frozenset:
        """Directory lines that queued work scheduled strictly before
        ``deadline`` *declares* it may touch.

        This is the conservative classifier behind the memory fast
        path's contention forecast: spawned coherence helpers
        (writebacks, invalidations, prefetches) carry a ``footprint``
        naming their lines; entries with an unknown footprint (CPU
        shells, timers) contribute nothing -- a plan tolerates them
        because any actual conflict is caught exactly by the server
        window preemption path, not by this summary.  Bucket summaries
        are memoized by (timestamp, length), so repeated probes over a
        mostly-unchanged queue cost one dict lookup per bucket."""
        out = []
        if self.use_buckets:
            cur = self._cur
            if cur is not None and self._cur_i < len(cur):
                for entry, _v in cur[self._cur_i:]:
                    fp = entry.footprint
                    if fp:
                        out.extend(fp)
            cache = self._fp_cache
            if len(cache) > 512:
                cache.clear()            # drop summaries of drained buckets
            for t in self._times:
                if t >= deadline:
                    continue
                b = self._buckets[t]
                key = (t, len(b))
                got = cache.get(t)
                if got is not None and got[0] == len(b):
                    fps = got[1]
                else:
                    fps = frozenset(
                        a for entry, _v in b
                        for a in (entry.footprint or ()))
                    cache[t] = (key[1], fps)
                out.extend(fps)
        else:
            for t, _seq, entry, _v in self._queue:
                if t < deadline:
                    fp = entry.footprint
                    if fp:
                        out.extend(fp)
        return frozenset(out)

    # -- execution ----------------------------------------------------------
    #
    # step() is THE drain loop (bound per-instance to the discipline's
    # implementation); run() below layers the until=/max_steps bounds on
    # top of it, so each discipline's pop logic exists exactly once.

    def _step_bucket(self) -> bool:
        """Run one resumption.  Returns False when the queue is empty.

        The front bucket is detached from the dict/heap wholesale and
        walked by index -- one heap pop *per distinct timestamp*, one
        index bump per resumption.  A dispatched process that schedules
        at the current time cannot mutate the detached list (the dict
        no longer holds it), so the walk is append-safe by construction.
        """
        cur = self._cur
        i = self._cur_i
        while True:
            if cur is not None:
                n = len(cur)
                while i < n:
                    proc, value = cur[i]
                    i += 1
                    if proc.alive:
                        self._cur_i = i
                        self.now = t = self._cur_t
                        self._current = proc
                        if self.trace_hook is not None:
                            self.trace_hook(t, proc)
                        proc._step(value)
                        return True
                self._cur = cur = None
            times = self._times
            if not times:
                self._cur_i = 0
                return False
            t = heapq.heappop(times)
            cur = self._buckets.pop(t)
            self._cur = cur
            self._cur_t = t
            i = 0

    def _step_heap(self) -> bool:
        """Run one resumption.  Returns False when the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            t, _seq, proc, value = pop(queue)
            if not proc.alive:
                continue
            self.now = t
            self._current = proc
            if self.trace_hook is not None:
                self.trace_hook(t, proc)
            proc._step(value)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_steps: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_steps``
        resumptions executed.  Returns the final clock value.

        With ``until=`` the clock always lands exactly on ``until`` --
        including when the queue drains early (the pre-refactor loop
        left ``now`` stale at the last resumption time in that case).
        """
        if until is None and max_steps is None:
            step = self.step
            while step():
                pass
            return self.now
        steps = 0
        while True:
            if max_steps is not None and steps >= max_steps:
                # Step budget exhausted with work still pending: the
                # clock stays at the last resumption (no clamp -- time
                # has not actually advanced to ``until``).
                return self.now
            nt = self.next_time()
            if nt is None or (until is not None and nt > until):
                break
            self.step()
            steps += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_process(self, gen: Generator, name: str = "",
                    until: Optional[float] = None) -> Any:
        """Convenience: run a single root process to completion."""
        proc = self.process(gen, name=name)
        self.run(until=until)
        if proc.alive:
            raise SimulationError(
                f"process {name!r} did not finish (deadlock or until= hit)")
        return proc.result


def _fire_later(evt: SimEvent, delay: float, value: Any):
    yield delay
    evt.fire(value)
