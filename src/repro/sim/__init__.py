"""Discrete-event simulation substrate (stands in for SimOS's event core)."""

from .engine import Engine, Interrupt, Process, SimEvent, SimulationError
from .resources import Mutex, Semaphore, Server

__all__ = [
    "Engine", "Interrupt", "Process", "SimEvent", "SimulationError",
    "Mutex", "Semaphore", "Server",
]
