"""The bytecode VM.

Deliberately *not* built on Python generators: the whole machine state
(call stack, operand stacks, locals, program counters) is explicit so it
can be snapshotted at barriers and restored by slipstream recovery --
the same reason the paper's recovery can re-fork an A-stream from its
R-stream's architectural state.

``run()`` executes until the next externally-visible event (shared
memory op, runtime call, I/O, or completion) and returns it; the busy
cycles executed since the previous event accumulate in ``pending_cycles``
and are drained by the hosting shell with ``take_cycles()``.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

import numpy as np

from ..compiler.bytecode import (BINOP_COST, ICALL_COST, OP_COST, Code,
                                 CompiledProgram)
from ..hotpath import hotpath_enabled
from .events import Done, IoOut, MemRead, MemWrite, RtCall, TimeSlice

__all__ = ["Frame", "VM", "VMError", "MISS"]

#: Sentinel a fast_read callback returns to force the slow (timed) path.
MISS = _MISS = object()

#: Sentinel a generated function (``interp.compile``) returns when it
#: is entered at a pc it has no resume stub for; the VM drops back to
#: the interpreter loop for the rest of this VM's life.
_DEOPT = object()

# Resolved lazily: interp.compile imports this module, so the binding
# cannot happen at import time.
_compiled_functions = None


def _compiled_fns(program):
    global _compiled_functions
    if _compiled_functions is None:
        from .compile import compiled_functions
        _compiled_functions = compiled_functions
    return _compiled_functions(program)


class VMError(RuntimeError):
    """Raised on VM faults (bad opcode, wild pc, integer traps)."""
    pass


def _as_bool(v) -> bool:
    return bool(v)


# Binary operators as standalone functions, so the translator can embed
# the resolved function directly in an instruction and the hot loop
# skips the per-execution operator dispatch entirely.

def _op_add(a, b):
    return a + b


def _op_sub(a, b):
    return a - b


def _op_mul(a, b):
    return a * b


def _op_div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:                               # integer /0 traps
            raise VMError("integer division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q  # C truncation
    if b == 0:
        # IEEE-754 / C semantics: float division by zero yields an
        # infinity (or NaN for 0/0), it does not trap.  A-streams
        # routinely divide by stale zeros; real hardware shrugs.
        if a == 0:
            return math.nan
        return math.inf if a > 0 else -math.inf   # b is +0.0 here
    return a / b


def _op_mod(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise VMError("integer modulo by zero")
        r = abs(a) % abs(b)
        return r if a >= 0 else -r                # C remainder
    return math.fmod(a, b) if b != 0 else math.nan


def _op_lt(a, b):
    return 1 if a < b else 0


def _op_le(a, b):
    return 1 if a <= b else 0


def _op_gt(a, b):
    return 1 if a > b else 0


def _op_ge(a, b):
    return 1 if a >= b else 0


def _op_eq(a, b):
    return 1 if a == b else 0


def _op_ne(a, b):
    return 1 if a != b else 0


_BINOP_FN = {
    "+": _op_add, "-": _op_sub, "*": _op_mul, "/": _op_div, "%": _op_mod,
    "<": _op_lt, "<=": _op_le, ">": _op_gt, ">=": _op_ge,
    "==": _op_eq, "!=": _op_ne,
}


def _binop(op: str, a, b):
    fn = _BINOP_FN.get(op)
    if fn is None:
        raise VMError(f"unknown binop {op!r}")
    return fn(a, b)


def _sqrt(a):
    return math.sqrt(a) if a >= 0 else math.nan      # C: sqrt(-x) = NaN


def _exp(a):
    try:
        return math.exp(a)
    except OverflowError:
        return math.inf                              # C: exp overflow = inf


def _log(a):
    if a > 0:
        return math.log(a)
    return -math.inf if a == 0 else math.nan         # C semantics


def _pow(a, b):
    try:
        return math.pow(a, b)
    except (OverflowError, ValueError):
        return math.nan


_INTRINSICS = {
    "sqrt": _sqrt,
    "fabs": lambda a: abs(a),
    "exp": _exp,
    "log": _log,
    "pow": _pow,
    "min": lambda a, b: a if a < b else b,
    "max": lambda a, b: a if a > b else b,
    "mod": _op_mod,
    "floor": lambda a: math.floor(a),
}


# ------------------------------------------------------- dispatch table
#
# The VM's inner loop dispatches on small integers over a pre-translated
# instruction stream instead of comparing opcode strings and looking up
# cost tables on every executed instruction.  Translation runs once per
# Code object (cached on the object), folds each instruction's full
# static cycle cost into the tuple -- OP_COST plus the per-operator
# BINOP_COST / per-intrinsic ICALL_COST -- and pre-resolves binop and
# intrinsic callables, so the accounted cycles are identical to the
# string-dispatch interpreter by construction.

(_N_LLOAD, _N_LSTORE, _N_CONST, _N_BINOP, _N_JUMP, _N_JFALSE,
 _N_GELOAD, _N_GESTORE, _N_GLOAD, _N_GSTORE, _N_ALOAD, _N_ASTORE,
 _N_NEG, _N_NOT, _N_DUP, _N_POP, _N_JNONE, _N_UNPACK2,
 _N_ICALL1, _N_ICALL2, _N_CALL, _N_RET, _N_RT, _N_PRINT) = range(24)

# Superinstructions (optimizer fusion pass; see compiler.bytecode).
(_N_LL2B, _N_CONSTB, _N_LLST, _N_CMPJF,
 _N_LCB, _N_LB, _N_LCBS, _N_LCJF, _N_LLBS, _N_LLJF,
 _N_CS, _N_CBLB, _N_LBCB, _N_LCBLB, _N_LCBSJ,
 _N_IX, _N_IXGE, _N_CBLBGE) = range(24, 42)

_SIMPLE_NUM = {
    "lload": _N_LLOAD, "lstore": _N_LSTORE, "const": _N_CONST,
    "jump": _N_JUMP, "jfalse": _N_JFALSE,
    "geload": _N_GELOAD, "gestore": _N_GESTORE,
    "gload": _N_GLOAD, "gstore": _N_GSTORE,
    "aload": _N_ALOAD, "astore": _N_ASTORE,
    "dup": _N_DUP, "pop": _N_POP, "jnone": _N_JNONE,
    "unpack2": _N_UNPACK2, "call": _N_CALL, "ret": _N_RET,
    "rt": _N_RT, "print": _N_PRINT,
}


def _translate(code: Code) -> List[Tuple]:
    """Build (and cache on ``code``) the fast instruction stream:
    one ``(opnum, arg, cost)`` tuple per bytecode instruction."""
    fast: List[Tuple] = []
    for ins in code.instrs:
        op = ins[0]
        if op == "binop":
            o = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_BINOP, fn, OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "icall":
            name, nargs = ins[1]
            fast.append((_N_ICALL1 if nargs == 1 else _N_ICALL2,
                         _INTRINSICS[name],
                         OP_COST[op] + ICALL_COST.get(name, 1)))
        elif op == "unop":
            fast.append((_N_NEG if ins[1] == "-" else _N_NOT, None,
                         OP_COST[op]))
        elif op == "ll2b":
            a, b, o = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LL2B, (a, b, fn),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "cb":
            k, o = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_CONSTB, (k, fn),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "llst":
            fast.append((_N_LLST, ins[1], OP_COST[op]))
        elif op == "cjf":
            o, tgt = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_CMPJF, (fn, tgt),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "lcb":
            a, k, o = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LCB, (a, k, fn),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "lb":
            b, o = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LB, (b, fn),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "lcbs":
            a, k, o, d = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LCBS, (a, k, fn, d),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "llbs":
            a, b, o, d = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LLBS, (a, b, fn, d),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "lcjf":
            a, k, o, tgt = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LCJF, (a, k, fn, tgt),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "lljf":
            a, b, o, tgt = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LLJF, (a, b, fn, tgt),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op == "cs":
            fast.append((_N_CS, ins[1], OP_COST[op]))
        elif op == "cblb":
            k, o1, b, o2 = ins[1]
            f1, f2 = _BINOP_FN.get(o1), _BINOP_FN.get(o2)
            if f1 is None or f2 is None:
                raise VMError(f"unknown binop in {ins!r}")
            fast.append((_N_CBLB, (k, f1, b, f2),
                         OP_COST[op] + BINOP_COST.get(o1, 0)
                         + BINOP_COST.get(o2, 0)))
        elif op == "lbcb":
            b, o1, k, o2 = ins[1]
            f1, f2 = _BINOP_FN.get(o1), _BINOP_FN.get(o2)
            if f1 is None or f2 is None:
                raise VMError(f"unknown binop in {ins!r}")
            fast.append((_N_LBCB, (b, f1, k, f2),
                         OP_COST[op] + BINOP_COST.get(o1, 0)
                         + BINOP_COST.get(o2, 0)))
        elif op == "lcblb":
            a, k, o1, b, o2 = ins[1]
            f1, f2 = _BINOP_FN.get(o1), _BINOP_FN.get(o2)
            if f1 is None or f2 is None:
                raise VMError(f"unknown binop in {ins!r}")
            fast.append((_N_LCBLB, (a, k, f1, b, f2),
                         OP_COST[op] + BINOP_COST.get(o1, 0)
                         + BINOP_COST.get(o2, 0)))
        elif op == "lcbsj":
            a, k, o, d, tgt = ins[1]
            fn = _BINOP_FN.get(o)
            if fn is None:
                raise VMError(f"unknown binop {o!r}")
            fast.append((_N_LCBSJ, (a, k, fn, d, tgt),
                         OP_COST[op] + BINOP_COST.get(o, 0)))
        elif op in ("ix", "ixge"):
            arg = ins[1]
            a, k1, o1, b, o2, k2, o3, c, o4 = arg[:9]
            fns = []
            for o in (o1, o2, o3, o4):
                fn = _BINOP_FN.get(o)
                if fn is None:
                    raise VMError(f"unknown binop {o!r}")
                fns.append(fn)
            cost = OP_COST[op] + sum(
                BINOP_COST.get(o, 0) for o in (o1, o2, o3, o4))
            packed = (a, k1, fns[0], b, fns[1], k2, fns[2], c, fns[3])
            if op == "ix":
                fast.append((_N_IX, packed, cost))
            else:
                fast.append((_N_IXGE, packed + (arg[9],), cost))
        elif op == "cblbge":
            k, o1, b, o2, g = ins[1]
            f1, f2 = _BINOP_FN.get(o1), _BINOP_FN.get(o2)
            if f1 is None or f2 is None:
                raise VMError(f"unknown binop in {ins!r}")
            fast.append((_N_CBLBGE, (k, f1, b, f2, g),
                         OP_COST[op] + BINOP_COST.get(o1, 0)
                         + BINOP_COST.get(o2, 0)))
        else:
            num = _SIMPLE_NUM.get(op)
            if num is None:
                raise VMError(f"unknown opcode {op!r}")
            fast.append((num, ins[1] if len(ins) > 1 else None,
                         OP_COST[op]))
    code._fast = fast
    return fast


class Frame:
    """One activation record: code, pc, operand stack, locals."""
    __slots__ = ("fidx", "code", "pc", "stack", "locals")

    def __init__(self, fidx: int, code: Code, args: Tuple = ()):
        self.fidx = fidx
        self.code = code
        self.pc = 0
        self.stack: List[Any] = []
        self.locals: List[Any] = [0] * code.n_locals
        for i, a in enumerate(args):
            self.locals[i] = a
        for slot, typ, dims in code.private_arrays:
            dtype = np.int64 if typ == "int" else np.float64
            self.locals[slot] = np.zeros(dims, dtype=dtype).reshape(-1)

    def clone(self) -> "Frame":
        """Deep-enough copy for snapshots (private arrays copied)."""
        f = Frame.__new__(Frame)
        f.fidx = self.fidx
        f.code = self.code
        f.pc = self.pc
        f.stack = list(self.stack)
        f.locals = [v.copy() if isinstance(v, np.ndarray) else v
                    for v in self.locals]
        return f


class VM:
    """One thread of execution over a CompiledProgram."""

    #: Instructions executed per run() slice before a forced TimeSlice
    #: yield.  Bounds how long pure compute (or a spin loop satisfied by
    #: the synchronous fast path) can hold the simulated clock still.
    MAX_SLICE = 20_000

    def __init__(self, program: CompiledProgram, entry_fidx: int,
                 args: Tuple = ()):
        self.program = program
        self.frames: List[Frame] = [
            Frame(entry_fidx, program.funcs[entry_fidx], args)]
        self.pending_cycles: float = 0.0
        self._pending_push: bool = False
        self.done: bool = False
        self.result: Any = None
        # Optional synchronous memory fast paths installed by the shell:
        # fast_read(gidx, flat) -> value or _MISS; fast_write(gidx, flat,
        # value) -> True if fully handled.  They keep cache *hits* out of
        # the event engine.
        self.fast_read = None
        self.fast_write = None
        # Optional per-line cycle tally installed by a profiling probe:
        # a dict mapping (function name, source line) -> busy cycles.
        # When set, run() takes the instrumented twin of the dispatch
        # loop; when None (the default) the hot loop is untouched.
        self.profile = None
        # Generated-code tier (REPRO_HOTPATH "compile"): one exec'd
        # Python function per Code object, indexed by fidx.  None means
        # the interpreter loop runs -- tier off, image without attached
        # gen_src (hand-built test Codes), or a deopt (restore/corrupt/
        # armed faults via disable_compiled).  Cycles and events are
        # bit-identical either way; see interp.compile.
        if hotpath_enabled("compile"):
            self._cfns = _compiled_fns(program)
        else:
            self._cfns = None

    # ----------------------------------------------------------- interface

    def push(self, value: Any) -> None:
        """Provide the result of the event just serviced (loads, rt calls
        that return values)."""
        self.frames[-1].stack.append(value)
        self._pending_push = False

    def take_cycles(self) -> float:
        """Drain and return busy cycles accumulated since last drain."""
        c = self.pending_cycles
        self.pending_cycles = 0.0
        return c

    def snapshot(self) -> List[Frame]:
        """Deep-copy the architectural state (for slipstream recovery)."""
        return [f.clone() for f in self.frames]

    def restore(self, snap: List[Frame]) -> None:
        """Adopt a snapshot (slipstream recovery re-fork).  The VM
        drops to the interpreter loop for good: a restored pc may sit
        anywhere, including mid-block positions the generated code has
        no resume stub for, and recovery is far off the hot path."""
        self._cfns = None
        self.frames = [f.clone() for f in snap]
        self.done = False
        self._pending_push = False

    def disable_compiled(self) -> None:
        """Force the interpreter loop for this VM (armed fault plans,
        restore/corrupt consumers).  Cycle-neutral by construction."""
        self._cfns = None

    def corrupt(self, spec: Tuple[int, object]) -> Optional[str]:
        """Deterministically corrupt one scalar of architectural state
        (fault injection: a soft error in the speculative A-stream's
        register file).  ``spec`` is a precomputed ``(selector, value)``
        pair from a seeded FaultPlan; the selector picks among the top
        frame's numeric stack/local slots, so identical runs corrupt
        identical slots.  Called from outside the dispatch loop -- the
        hot path carries no injection code.  Returns a description of
        the corrupted slot, or None when no scalar slot exists."""
        # Fault-injection consumers run interpreted (the shell already
        # disables the compiled tier when a fault plan is armed; this
        # keeps the contract even for direct callers).
        self._cfns = None
        if not self.frames:
            return None
        sel, value = spec
        frame = self.frames[-1]
        slots = [("stack", i) for i, v in enumerate(frame.stack)
                 if isinstance(v, (int, float))]
        slots += [("local", i) for i, v in enumerate(frame.locals)
                  if isinstance(v, (int, float))]
        if not slots:
            return None
        where, i = slots[sel % len(slots)]
        if where == "stack":
            frame.stack[i] = value
        else:
            frame.locals[i] = value
        return f"{where}[{i}]={value!r} in {frame.code.name}"

    @property
    def depth(self) -> int:
        """Current call-stack depth."""
        return len(self.frames)

    def position(self):
        """Current (code, pc) for attribution, or None when no frame is
        live.  Outside the dispatch loop ``frame.pc`` has already been
        advanced past the instruction that produced the current event,
        so the reported pc is clamped back onto it."""
        if not self.frames:
            return None
        f = self.frames[-1]
        return (f.code, f.pc - 1 if f.pc > 0 else 0)

    # ----------------------------------------------------------- execution

    def run(self):
        """Execute until the next event and return it.

        Dispatches on pre-translated ``(opnum, arg, cost)`` tuples (see
        :func:`_translate`); cycle accounting is bit-identical to the
        original string-dispatch loop because every instruction's full
        static cost is folded into its tuple at translation time.
        """
        if self.profile is not None:
            return self._run_profiled()
        if self._cfns is not None:
            return self._run_compiled()
        if self.done:
            return Done(self.result)
        if self._pending_push:
            raise VMError("event result was never pushed")
        budget = self.MAX_SLICE
        frames = self.frames
        fast_read = self.fast_read
        fast_write = self.fast_write
        while True:
            frame = frames[-1]
            code = frame.code
            try:
                fi = code._fast
            except AttributeError:
                fi = _translate(code)
            stack = frame.stack
            locs = frame.locals
            pc = frame.pc
            cycles = 0.0
            try:
                while True:
                    num, arg, cost = fi[pc]
                    cycles += cost
                    # Dispatch arms are ordered by measured dynamic
                    # frequency over the static suite with fusion on
                    # (lb 22%, lcb 15%, binop 14%, cb 11%, const 10%,
                    # geload 8%, ...); the chain is a linear scan, so
                    # hot ops must sit near the top.
                    if num == _N_LB:
                        stack[-1] = arg[1](stack[-1], locs[arg[0]])
                        pc += 1
                    elif num == _N_LCB:
                        stack.append(arg[2](locs[arg[0]], arg[1]))
                        pc += 1
                    elif num == _N_CBLB:
                        k, f1, b, f2 = arg
                        stack[-1] = f2(f1(stack[-1], k), locs[b])
                        pc += 1
                    elif num == _N_LBCB:
                        b, f1, k, f2 = arg
                        stack[-1] = f2(f1(stack[-1], locs[b]), k)
                        pc += 1
                    elif num == _N_LCBLB:
                        a, k, f1, b, f2 = arg
                        stack.append(f2(f1(locs[a], k), locs[b]))
                        pc += 1
                    elif num == _N_BINOP:
                        b = stack.pop()
                        a = stack.pop()
                        stack.append(arg(a, b))
                        pc += 1
                    elif num == _N_CONSTB:
                        stack[-1] = arg[1](stack[-1], arg[0])
                        pc += 1
                    elif num == _N_CONST:
                        stack.append(arg)
                        pc += 1
                    elif num == _N_GELOAD:
                        flat = stack.pop()
                        if fast_read is not None:
                            v = fast_read(arg, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(arg, flat)
                    elif num == _N_IXGE:
                        a, k1, f1, b, f2, k2, f3, c, f4, g = arg
                        flat = f4(f3(f2(f1(locs[a], k1), locs[b]), k2),
                                  locs[c])
                        if fast_read is not None:
                            v = fast_read(g, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(g, flat)
                    elif num == _N_CBLBGE:
                        k, f1, b, f2, g = arg
                        flat = f2(f1(stack.pop(), k), locs[b])
                        if fast_read is not None:
                            v = fast_read(g, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(g, flat)
                    elif num == _N_IX:
                        a, k1, f1, b, f2, k2, f3, c, f4 = arg
                        stack.append(f4(f3(f2(f1(locs[a], k1), locs[b]),
                                           k2), locs[c]))
                        pc += 1
                    elif num == _N_JUMP:
                        if arg < pc:
                            # Backward jump: loop boundary.  Enforce the
                            # slice budget here so spin loops served by
                            # the fast path still yield simulated time.
                            budget -= 1
                            if budget <= 0:
                                frame.pc = arg
                                self.pending_cycles += cycles
                                return TimeSlice()
                        pc = arg
                    elif num == _N_GESTORE:
                        v = stack.pop()
                        flat = stack.pop()
                        if fast_write is not None and \
                                fast_write(arg, flat, v):
                            pc += 1
                            continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(arg, flat, v)
                    elif num == _N_LCBSJ:
                        a, k, fn, d, t = arg
                        locs[d] = fn(locs[a], k)
                        if t <= pc:
                            # Absorbed backward jump: same slice-budget
                            # enforcement as the standalone _N_JUMP arm.
                            budget -= 1
                            if budget <= 0:
                                frame.pc = t
                                self.pending_cycles += cycles
                                return TimeSlice()
                        pc = t
                    elif num == _N_LCJF:
                        a, k, fn, t = arg
                        pc = pc + 1 if fn(locs[a], k) else t
                    elif num == _N_LCBS:
                        a, k, fn, d = arg
                        locs[d] = fn(locs[a], k)
                        pc += 1
                    elif num == _N_CS:
                        locs[arg[1]] = arg[0]
                        pc += 1
                    elif num == _N_LSTORE:
                        locs[arg] = stack.pop()
                        pc += 1
                    elif num == _N_JFALSE:
                        pc = arg if not stack.pop() else pc + 1
                    elif num == _N_LLOAD:
                        stack.append(locs[arg])
                        pc += 1
                    elif num == _N_LL2B:
                        a, b, fn = arg
                        stack.append(fn(locs[a], locs[b]))
                        pc += 1
                    elif num == _N_LLBS:
                        a, b, fn, d = arg
                        locs[d] = fn(locs[a], locs[b])
                        pc += 1
                    elif num == _N_LLJF:
                        a, b, fn, t = arg
                        pc = pc + 1 if fn(locs[a], locs[b]) else t
                    elif num == _N_CMPJF:
                        b = stack.pop()
                        a = stack.pop()
                        pc = pc + 1 if arg[0](a, b) else arg[1]
                    elif num == _N_LLST:
                        locs[arg[1]] = locs[arg[0]]
                        pc += 1
                    elif num == _N_ALOAD:
                        flat = stack.pop()
                        stack.append(locs[arg][flat].item())
                        pc += 1
                    elif num == _N_ASTORE:
                        v = stack.pop()
                        flat = stack.pop()
                        locs[arg][flat] = v
                        pc += 1
                    elif num == _N_GLOAD:
                        if fast_read is not None:
                            v = fast_read(arg, 0)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(arg, 0)
                    elif num == _N_GSTORE:
                        v = stack.pop()
                        if fast_write is not None and \
                                fast_write(arg, 0, v):
                            pc += 1
                            continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(arg, 0, v)
                    elif num == _N_NEG:
                        stack[-1] = -stack[-1]
                        pc += 1
                    elif num == _N_NOT:
                        stack[-1] = 0 if stack[-1] else 1
                        pc += 1
                    elif num == _N_DUP:
                        stack.append(stack[-1])
                        pc += 1
                    elif num == _N_POP:
                        stack.pop()
                        pc += 1
                    elif num == _N_JNONE:
                        if stack[-1] is None:
                            stack.pop()
                            pc = arg
                        else:
                            pc += 1
                    elif num == _N_UNPACK2:
                        a, b = stack.pop()
                        stack.append(a)
                        stack.append(b)
                        pc += 1
                    elif num == _N_ICALL1:
                        stack.append(arg(stack.pop()))
                        pc += 1
                    elif num == _N_ICALL2:
                        b = stack.pop()
                        a = stack.pop()
                        stack.append(arg(a, b))
                        pc += 1
                    elif num == _N_CALL:
                        fidx, nargs = arg
                        args = tuple(stack[len(stack) - nargs:])
                        del stack[len(stack) - nargs:]
                        frame.pc = pc + 1
                        nf = Frame(fidx, self.program.funcs[fidx], args)
                        frames.append(nf)
                        break           # switch to the new frame
                    elif num == _N_RET:
                        rv = stack.pop() if stack else 0
                        frames.pop()
                        if not frames:
                            self.done = True
                            self.result = rv
                            self.pending_cycles += cycles
                            return Done(rv)
                        frames[-1].stack.append(rv)
                        break           # back to the caller's frame
                    elif num == _N_RT:
                        name, static, nargs = arg
                        if nargs:
                            args = tuple(stack[len(stack) - nargs:])
                            del stack[len(stack) - nargs:]
                        else:
                            args = ()
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        return RtCall(name, static, args)
                    elif num == _N_PRINT:
                        vals = tuple(stack[len(stack) - arg:])
                        del stack[len(stack) - arg:]
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        return IoOut(vals)
                    else:
                        raise VMError(f"unknown opcode number {num!r}")
            except IndexError:
                instrs = code.instrs
                raise VMError(
                    f"VM fault in {code.name} at pc={pc}: "
                    f"{instrs[pc] if pc < len(instrs) else 'pc out of range'}"
                ) from None
            self.pending_cycles += cycles

    def _run_compiled(self):
        """Drive the generated-code tier: call the current frame's
        exec-compiled function until it returns an event.  ``None``
        means a frame switch (call pushed / ret popped) -- loop with
        the surviving slice budget, exactly like the interpreter's
        outer while.  The ``_DEOPT`` sentinel (entry pc without a
        resume stub) permanently drops this VM to the interpreter,
        which re-runs from the identical synced state."""
        if self.done:
            return Done(self.result)
        if self._pending_push:
            raise VMError("event result was never pushed")
        budget = self.MAX_SLICE
        frames = self.frames
        cfns = self._cfns
        while True:
            ev, budget = cfns[frames[-1].fidx](self, frames[-1], budget)
            if ev is not None:
                if ev is _DEOPT:
                    self._cfns = None
                    return self.run()
                return ev

    def _run_profiled(self):
        """Instrumented twin of :meth:`run` used when ``self.profile``
        is set: identical dispatch, cycle accounting, and event order,
        plus (a) every instruction's static cost -- and the +1 rt/print
        surcharge -- is tallied into ``self.profile`` under its
        (function name, source line) key, and (b) ``frame.pc`` is
        synced before the fast_read/fast_write callbacks so the hosting
        shell's profiling hooks can attribute fast-path memory charges
        to the precise access site.  The tally only *records*; it never
        feeds back into control flow or ``pending_cycles``, so cycles
        stay bit-identical to the unprofiled loop.
        """
        if self.done:
            return Done(self.result)
        if self._pending_push:
            raise VMError("event result was never pushed")
        budget = self.MAX_SLICE
        frames = self.frames
        fast_read = self.fast_read
        fast_write = self.fast_write
        prof = self.profile
        while True:
            frame = frames[-1]
            code = frame.code
            try:
                fi = code._fast
            except AttributeError:
                fi = _translate(code)
            lines = getattr(code, "lines", None)
            if not lines or len(lines) != len(fi):
                lines = [0] * len(fi)
            fname = code.name
            cur_line = None
            cur_key = None
            stack = frame.stack
            locs = frame.locals
            pc = frame.pc
            cycles = 0.0
            try:
                while True:
                    num, arg, cost = fi[pc]
                    cycles += cost
                    ln = lines[pc]
                    if ln != cur_line:
                        cur_line = ln
                        cur_key = (fname, ln)
                    if cost:
                        prof[cur_key] = prof.get(cur_key, 0.0) + cost
                    # Same frequency-ordered dispatch as ``run`` -- see
                    # the comment there.
                    if num == _N_LB:
                        stack[-1] = arg[1](stack[-1], locs[arg[0]])
                        pc += 1
                    elif num == _N_LCB:
                        stack.append(arg[2](locs[arg[0]], arg[1]))
                        pc += 1
                    elif num == _N_CBLB:
                        k, f1, b, f2 = arg
                        stack[-1] = f2(f1(stack[-1], k), locs[b])
                        pc += 1
                    elif num == _N_LBCB:
                        b, f1, k, f2 = arg
                        stack[-1] = f2(f1(stack[-1], locs[b]), k)
                        pc += 1
                    elif num == _N_LCBLB:
                        a, k, f1, b, f2 = arg
                        stack.append(f2(f1(locs[a], k), locs[b]))
                        pc += 1
                    elif num == _N_BINOP:
                        b = stack.pop()
                        a = stack.pop()
                        stack.append(arg(a, b))
                        pc += 1
                    elif num == _N_CONSTB:
                        stack[-1] = arg[1](stack[-1], arg[0])
                        pc += 1
                    elif num == _N_CONST:
                        stack.append(arg)
                        pc += 1
                    elif num == _N_GELOAD:
                        flat = stack.pop()
                        if fast_read is not None:
                            frame.pc = pc + 1
                            v = fast_read(arg, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(arg, flat)
                    elif num == _N_IXGE:
                        a, k1, f1, b, f2, k2, f3, c, f4, g = arg
                        flat = f4(f3(f2(f1(locs[a], k1), locs[b]), k2),
                                  locs[c])
                        if fast_read is not None:
                            frame.pc = pc + 1
                            v = fast_read(g, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(g, flat)
                    elif num == _N_CBLBGE:
                        k, f1, b, f2, g = arg
                        flat = f2(f1(stack.pop(), k), locs[b])
                        if fast_read is not None:
                            frame.pc = pc + 1
                            v = fast_read(g, flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(g, flat)
                    elif num == _N_IX:
                        a, k1, f1, b, f2, k2, f3, c, f4 = arg
                        stack.append(f4(f3(f2(f1(locs[a], k1), locs[b]),
                                           k2), locs[c]))
                        pc += 1
                    elif num == _N_JUMP:
                        if arg < pc:
                            budget -= 1
                            if budget <= 0:
                                frame.pc = arg
                                self.pending_cycles += cycles
                                return TimeSlice()
                        pc = arg
                    elif num == _N_GESTORE:
                        v = stack.pop()
                        flat = stack.pop()
                        if fast_write is not None:
                            frame.pc = pc + 1
                            if fast_write(arg, flat, v):
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(arg, flat, v)
                    elif num == _N_LCBSJ:
                        a, k, fn, d, t = arg
                        locs[d] = fn(locs[a], k)
                        if t <= pc:
                            # Absorbed backward jump: same slice-budget
                            # enforcement as the standalone _N_JUMP arm.
                            budget -= 1
                            if budget <= 0:
                                frame.pc = t
                                self.pending_cycles += cycles
                                return TimeSlice()
                        pc = t
                    elif num == _N_LCJF:
                        a, k, fn, t = arg
                        pc = pc + 1 if fn(locs[a], k) else t
                    elif num == _N_LCBS:
                        a, k, fn, d = arg
                        locs[d] = fn(locs[a], k)
                        pc += 1
                    elif num == _N_CS:
                        locs[arg[1]] = arg[0]
                        pc += 1
                    elif num == _N_LSTORE:
                        locs[arg] = stack.pop()
                        pc += 1
                    elif num == _N_JFALSE:
                        pc = arg if not stack.pop() else pc + 1
                    elif num == _N_LLOAD:
                        stack.append(locs[arg])
                        pc += 1
                    elif num == _N_LL2B:
                        a, b, fn = arg
                        stack.append(fn(locs[a], locs[b]))
                        pc += 1
                    elif num == _N_LLBS:
                        a, b, fn, d = arg
                        locs[d] = fn(locs[a], locs[b])
                        pc += 1
                    elif num == _N_LLJF:
                        a, b, fn, t = arg
                        pc = pc + 1 if fn(locs[a], locs[b]) else t
                    elif num == _N_CMPJF:
                        b = stack.pop()
                        a = stack.pop()
                        pc = pc + 1 if arg[0](a, b) else arg[1]
                    elif num == _N_LLST:
                        locs[arg[1]] = locs[arg[0]]
                        pc += 1
                    elif num == _N_ALOAD:
                        flat = stack.pop()
                        stack.append(locs[arg][flat].item())
                        pc += 1
                    elif num == _N_ASTORE:
                        v = stack.pop()
                        flat = stack.pop()
                        locs[arg][flat] = v
                        pc += 1
                    elif num == _N_GLOAD:
                        if fast_read is not None:
                            frame.pc = pc + 1
                            v = fast_read(arg, 0)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(arg, 0)
                    elif num == _N_GSTORE:
                        v = stack.pop()
                        if fast_write is not None:
                            frame.pc = pc + 1
                            if fast_write(arg, 0, v):
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(arg, 0, v)
                    elif num == _N_NEG:
                        stack[-1] = -stack[-1]
                        pc += 1
                    elif num == _N_NOT:
                        stack[-1] = 0 if stack[-1] else 1
                        pc += 1
                    elif num == _N_DUP:
                        stack.append(stack[-1])
                        pc += 1
                    elif num == _N_POP:
                        stack.pop()
                        pc += 1
                    elif num == _N_JNONE:
                        if stack[-1] is None:
                            stack.pop()
                            pc = arg
                        else:
                            pc += 1
                    elif num == _N_UNPACK2:
                        a, b = stack.pop()
                        stack.append(a)
                        stack.append(b)
                        pc += 1
                    elif num == _N_ICALL1:
                        stack.append(arg(stack.pop()))
                        pc += 1
                    elif num == _N_ICALL2:
                        b = stack.pop()
                        a = stack.pop()
                        stack.append(arg(a, b))
                        pc += 1
                    elif num == _N_CALL:
                        fidx, nargs = arg
                        args = tuple(stack[len(stack) - nargs:])
                        del stack[len(stack) - nargs:]
                        frame.pc = pc + 1
                        nf = Frame(fidx, self.program.funcs[fidx], args)
                        frames.append(nf)
                        break           # switch to the new frame
                    elif num == _N_RET:
                        rv = stack.pop() if stack else 0
                        frames.pop()
                        if not frames:
                            self.done = True
                            self.result = rv
                            self.pending_cycles += cycles
                            return Done(rv)
                        frames[-1].stack.append(rv)
                        break           # back to the caller's frame
                    elif num == _N_RT:
                        name, static, nargs = arg
                        if nargs:
                            args = tuple(stack[len(stack) - nargs:])
                            del stack[len(stack) - nargs:]
                        else:
                            args = ()
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        prof[cur_key] = prof.get(cur_key, 0.0) + 1.0
                        return RtCall(name, static, args)
                    elif num == _N_PRINT:
                        vals = tuple(stack[len(stack) - arg:])
                        del stack[len(stack) - arg:]
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        prof[cur_key] = prof.get(cur_key, 0.0) + 1.0
                        return IoOut(vals)
                    else:
                        raise VMError(f"unknown opcode number {num!r}")
            except IndexError:
                instrs = code.instrs
                raise VMError(
                    f"VM fault in {code.name} at pc={pc}: "
                    f"{instrs[pc] if pc < len(instrs) else 'pc out of range'}"
                ) from None
            self.pending_cycles += cycles
