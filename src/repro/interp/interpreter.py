"""The bytecode VM.

Deliberately *not* built on Python generators: the whole machine state
(call stack, operand stacks, locals, program counters) is explicit so it
can be snapshotted at barriers and restored by slipstream recovery --
the same reason the paper's recovery can re-fork an A-stream from its
R-stream's architectural state.

``run()`` executes until the next externally-visible event (shared
memory op, runtime call, I/O, or completion) and returns it; the busy
cycles executed since the previous event accumulate in ``pending_cycles``
and are drained by the hosting shell with ``take_cycles()``.
"""

from __future__ import annotations

import math
from typing import Any, List, Tuple

import numpy as np

from ..compiler.bytecode import (BINOP_COST, ICALL_COST, OP_COST, Code,
                                 CompiledProgram)
from .events import Done, IoOut, MemRead, MemWrite, RtCall, TimeSlice

__all__ = ["Frame", "VM", "VMError", "MISS"]

#: Sentinel a fast_read callback returns to force the slow (timed) path.
MISS = _MISS = object()


class VMError(RuntimeError):
    """Raised on VM faults (bad opcode, wild pc, integer traps)."""
    pass


def _as_bool(v) -> bool:
    return bool(v)


def _binop(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:                               # integer /0 traps
                raise VMError("integer division by zero")
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q  # C truncation
        if b == 0:
            # IEEE-754 / C semantics: float division by zero yields an
            # infinity (or NaN for 0/0), it does not trap.  A-streams
            # routinely divide by stale zeros; real hardware shrugs.
            if a == 0:
                return math.nan
            return math.inf if a > 0 else -math.inf   # b is +0.0 here
        return a / b
    if op == "%":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise VMError("integer modulo by zero")
            r = abs(a) % abs(b)
            return r if a >= 0 else -r                # C remainder
        return math.fmod(a, b) if b != 0 else math.nan
    if op == "<":
        return 1 if a < b else 0
    if op == "<=":
        return 1 if a <= b else 0
    if op == ">":
        return 1 if a > b else 0
    if op == ">=":
        return 1 if a >= b else 0
    if op == "==":
        return 1 if a == b else 0
    if op == "!=":
        return 1 if a != b else 0
    raise VMError(f"unknown binop {op!r}")


def _sqrt(a):
    return math.sqrt(a) if a >= 0 else math.nan      # C: sqrt(-x) = NaN


def _exp(a):
    try:
        return math.exp(a)
    except OverflowError:
        return math.inf                              # C: exp overflow = inf


def _log(a):
    if a > 0:
        return math.log(a)
    return -math.inf if a == 0 else math.nan         # C semantics


def _pow(a, b):
    try:
        return math.pow(a, b)
    except (OverflowError, ValueError):
        return math.nan


_INTRINSICS = {
    "sqrt": _sqrt,
    "fabs": lambda a: abs(a),
    "exp": _exp,
    "log": _log,
    "pow": _pow,
    "min": lambda a, b: a if a < b else b,
    "max": lambda a, b: a if a > b else b,
    "mod": lambda a, b: _binop("%", a, b),
    "floor": lambda a: math.floor(a),
}


class Frame:
    """One activation record: code, pc, operand stack, locals."""
    __slots__ = ("fidx", "code", "pc", "stack", "locals")

    def __init__(self, fidx: int, code: Code, args: Tuple = ()):
        self.fidx = fidx
        self.code = code
        self.pc = 0
        self.stack: List[Any] = []
        self.locals: List[Any] = [0] * code.n_locals
        for i, a in enumerate(args):
            self.locals[i] = a
        for slot, typ, dims in code.private_arrays:
            dtype = np.int64 if typ == "int" else np.float64
            self.locals[slot] = np.zeros(dims, dtype=dtype).reshape(-1)

    def clone(self) -> "Frame":
        """Deep-enough copy for snapshots (private arrays copied)."""
        f = Frame.__new__(Frame)
        f.fidx = self.fidx
        f.code = self.code
        f.pc = self.pc
        f.stack = list(self.stack)
        f.locals = [v.copy() if isinstance(v, np.ndarray) else v
                    for v in self.locals]
        return f


class VM:
    """One thread of execution over a CompiledProgram."""

    #: Instructions executed per run() slice before a forced TimeSlice
    #: yield.  Bounds how long pure compute (or a spin loop satisfied by
    #: the synchronous fast path) can hold the simulated clock still.
    MAX_SLICE = 20_000

    def __init__(self, program: CompiledProgram, entry_fidx: int,
                 args: Tuple = ()):
        self.program = program
        self.frames: List[Frame] = [
            Frame(entry_fidx, program.funcs[entry_fidx], args)]
        self.pending_cycles: float = 0.0
        self._pending_push: bool = False
        self.done: bool = False
        self.result: Any = None
        # Optional synchronous memory fast paths installed by the shell:
        # fast_read(gidx, flat) -> value or _MISS; fast_write(gidx, flat,
        # value) -> True if fully handled.  They keep cache *hits* out of
        # the event engine.
        self.fast_read = None
        self.fast_write = None

    # ----------------------------------------------------------- interface

    def push(self, value: Any) -> None:
        """Provide the result of the event just serviced (loads, rt calls
        that return values)."""
        self.frames[-1].stack.append(value)
        self._pending_push = False

    def take_cycles(self) -> float:
        """Drain and return busy cycles accumulated since last drain."""
        c = self.pending_cycles
        self.pending_cycles = 0.0
        return c

    def snapshot(self) -> List[Frame]:
        """Deep-copy the architectural state (for slipstream recovery)."""
        return [f.clone() for f in self.frames]

    def restore(self, snap: List[Frame]) -> None:
        """Adopt a snapshot (slipstream recovery re-fork)."""
        self.frames = [f.clone() for f in snap]
        self.done = False
        self._pending_push = False

    @property
    def depth(self) -> int:
        """Current call-stack depth."""
        return len(self.frames)

    # ----------------------------------------------------------- execution

    def run(self):
        """Execute until the next event and return it."""
        if self.done:
            return Done(self.result)
        if self._pending_push:
            raise VMError("event result was never pushed")
        cost = OP_COST
        budget = self.MAX_SLICE
        while True:
            frame = self.frames[-1]
            instrs = frame.code.instrs
            stack = frame.stack
            locs = frame.locals
            pc = frame.pc
            cycles = 0.0
            try:
                while True:
                    ins = instrs[pc]
                    op = ins[0]
                    cycles += cost[op]
                    if op == "lload":
                        stack.append(locs[ins[1]])
                        pc += 1
                    elif op == "lstore":
                        locs[ins[1]] = stack.pop()
                        pc += 1
                    elif op == "const":
                        stack.append(ins[1])
                        pc += 1
                    elif op == "binop":
                        o = ins[1]
                        b = stack.pop()
                        a = stack.pop()
                        stack.append(_binop(o, a, b))
                        cycles += BINOP_COST.get(o, 0)
                        pc += 1
                    elif op == "jump":
                        t = ins[1]
                        if t < pc:
                            # Backward jump: loop boundary.  Enforce the
                            # slice budget here so spin loops served by
                            # the fast path still yield simulated time.
                            budget -= 1
                            if budget <= 0:
                                frame.pc = t
                                self.pending_cycles += cycles
                                return TimeSlice()
                        pc = t
                    elif op == "jfalse":
                        pc = ins[1] if not stack.pop() else pc + 1
                    elif op == "geload":
                        flat = stack.pop()
                        if self.fast_read is not None:
                            v = self.fast_read(ins[1], flat)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(ins[1], flat)
                    elif op == "gestore":
                        v = stack.pop()
                        flat = stack.pop()
                        if self.fast_write is not None and \
                                self.fast_write(ins[1], flat, v):
                            pc += 1
                            continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(ins[1], flat, v)
                    elif op == "gload":
                        if self.fast_read is not None:
                            v = self.fast_read(ins[1], 0)
                            if v is not _MISS:
                                stack.append(v)
                                pc += 1
                                continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        self._pending_push = True
                        return MemRead(ins[1], 0)
                    elif op == "gstore":
                        v = stack.pop()
                        if self.fast_write is not None and \
                                self.fast_write(ins[1], 0, v):
                            pc += 1
                            continue
                        frame.pc = pc + 1
                        self.pending_cycles += cycles
                        return MemWrite(ins[1], 0, v)
                    elif op == "aload":
                        flat = stack.pop()
                        stack.append(locs[ins[1]][flat].item())
                        pc += 1
                    elif op == "astore":
                        v = stack.pop()
                        flat = stack.pop()
                        locs[ins[1]][flat] = v
                        pc += 1
                    elif op == "unop":
                        a = stack.pop()
                        stack.append(-a if ins[1] == "-"
                                     else (0 if a else 1))
                        pc += 1
                    elif op == "dup":
                        stack.append(stack[-1])
                        pc += 1
                    elif op == "pop":
                        stack.pop()
                        pc += 1
                    elif op == "jnone":
                        if stack[-1] is None:
                            stack.pop()
                            pc = ins[1]
                        else:
                            pc += 1
                    elif op == "unpack2":
                        a, b = stack.pop()
                        stack.append(a)
                        stack.append(b)
                        pc += 1
                    elif op == "icall":
                        name, nargs = ins[1]
                        cycles += ICALL_COST.get(name, 1)
                        if nargs == 1:
                            stack.append(_INTRINSICS[name](stack.pop()))
                        else:
                            b = stack.pop()
                            a = stack.pop()
                            stack.append(_INTRINSICS[name](a, b))
                        pc += 1
                    elif op == "call":
                        fidx, nargs = ins[1]
                        args = tuple(stack[len(stack) - nargs:])
                        del stack[len(stack) - nargs:]
                        frame.pc = pc + 1
                        nf = Frame(fidx, self.program.funcs[fidx], args)
                        self.frames.append(nf)
                        break           # switch to the new frame
                    elif op == "ret":
                        rv = stack.pop() if stack else 0
                        self.frames.pop()
                        if not self.frames:
                            self.done = True
                            self.result = rv
                            self.pending_cycles += cycles
                            return Done(rv)
                        self.frames[-1].stack.append(rv)
                        break           # back to the caller's frame
                    elif op == "rt":
                        name, static, nargs = ins[1]
                        if nargs:
                            args = tuple(stack[len(stack) - nargs:])
                            del stack[len(stack) - nargs:]
                        else:
                            args = ()
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        return RtCall(name, static, args)
                    elif op == "print":
                        nargs = ins[1]
                        vals = tuple(stack[len(stack) - nargs:])
                        del stack[len(stack) - nargs:]
                        frame.pc = pc + 1
                        self.pending_cycles += cycles + 1
                        return IoOut(vals)
                    else:
                        raise VMError(f"unknown opcode {op!r}")
            except IndexError:
                raise VMError(
                    f"VM fault in {frame.code.name} at pc={pc}: "
                    f"{instrs[pc] if pc < len(instrs) else 'pc out of range'}"
                ) from None
            self.pending_cycles += cycles
