"""Bytecode VM with snapshot/restore (slipstream recovery substrate)."""

from .events import Done, IoOut, MemRead, MemWrite, RtCall
from .funcrunner import FunctionalRunner, GlobalStore
from .interpreter import VM, Frame, VMError

__all__ = ["Done", "IoOut", "MemRead", "MemWrite", "RtCall",
           "FunctionalRunner", "GlobalStore", "VM", "Frame", "VMError"]
