"""Functional (untimed, single-thread) reference executor.

Runs a compiled image with a trivial implementation of the runtime
surface: one thread executes everything, worksharing hands it the whole
iteration space, synchronization is a no-op.  This is the compiler's
semantic oracle -- integration tests check that the full simulated
machine (any mode, any schedule) computes exactly what this executor
computes -- and a convenient way to run SlipC programs for their output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.bytecode import CompiledProgram
from ..obs.probe import NULL_PROBE, Probe
from .events import Done, IoOut, MemRead, MemWrite, RtCall, TimeSlice
from .interpreter import VM

__all__ = ["GlobalStore", "FunctionalRunner"]


class GlobalStore:
    """The program's shared data: one numpy array per global."""

    def __init__(self, program: CompiledProgram):
        self.program = program
        self.arrays: List[np.ndarray] = []
        for g in program.globals:
            dtype = np.int64 if g.typ == "int" else np.float64
            arr = np.zeros(g.size, dtype=dtype)
            if g.init is not None:
                arr[0] = g.init
            self.arrays.append(arr)

    def read(self, gidx: int, flat: int):
        """Read one element of a shared global."""
        return self.arrays[gidx][flat].item()

    def write(self, gidx: int, flat: int, value) -> None:
        """Write one element of a shared global."""
        self.arrays[gidx][flat] = value

    def array(self, name: str) -> np.ndarray:
        """The named global as a shaped NumPy view."""
        g = self.program.global_named(name)
        return self.arrays[g.index].reshape(g.dims or (1,))

    def value(self, name: str):
        """Scalar value (or array view) of the named global."""
        g = self.program.global_named(name)
        if g.dims:
            return self.array(name)
        return self.arrays[g.index][0].item()


class FunctionalRunner:
    """Single-threaded reference execution of a compiled image."""

    def __init__(self, program: CompiledProgram,
                 inputs: Optional[List[float]] = None,
                 probe: Probe = NULL_PROBE):
        self.program = program
        self.store = GlobalStore(program)
        self.output: List[Tuple] = []
        self.inputs = list(inputs or [])
        self._input_pos = 0
        self._sched: Dict[int, List] = {}
        self._instructions = 0
        self.probe = probe

    def run(self, max_events: int = 50_000_000):
        """Execute main() to completion; returns self for chaining."""
        vm = VM(self.program, self.program.main_index)
        if self.probe.prof is not None:
            self.probe.prof.bind_vm(vm)
        self._run_vm(vm, max_events)
        self.probe.count("func.events", self._instructions)
        return self

    def _run_vm(self, vm: VM, max_events: int) -> None:
        for _ in range(max_events):
            ev = vm.run()
            self._instructions += 1
            if isinstance(ev, MemRead):
                vm.push(self.store.read(ev.gidx, ev.flat))
            elif isinstance(ev, MemWrite):
                self.store.write(ev.gidx, ev.flat, ev.value)
            elif isinstance(ev, IoOut):
                self.output.append(ev.values)
            elif isinstance(ev, RtCall):
                self._rt(vm, ev, max_events)
            elif isinstance(ev, TimeSlice):
                pass
            elif isinstance(ev, Done):
                return
        raise RuntimeError("functional run exceeded max_events")

    # ------------------------------------------------------------- runtime

    def _rt(self, vm: VM, ev: RtCall, max_events: int) -> None:
        name = ev.name
        self.probe.count("rt." + name)
        if name == "parallel_begin":
            pass                        # team of one: master does the work
        elif name == "parallel_end":
            pass
        elif name == "sched_init":
            site = ev.static[0]
            lo, hi, step = ev.args
            n = max(0, -((lo - hi) // step))
            self._sched[site] = [False, n]   # [handed_out, total]
        elif name == "sched_next":
            site = ev.static[0]
            state = self._sched[site]
            if state[0] or state[1] == 0:
                vm.push(None)
            else:
                state[0] = True
                vm.push((0, state[1]))       # whole range, one chunk
        elif name == "sections_init":
            site, n = ev.static
            self._sched[site] = [0, n]
        elif name == "sections_next":
            site = ev.static[0]
            state = self._sched[site]
            if state[0] >= state[1]:
                vm.push(None)
            else:
                vm.push(state[0])
                state[0] += 1
        elif name == "reduce":
            op, gidx = ev.static
            (value,) = ev.args
            cur = self.store.read(gidx, 0)
            self.store.write(gidx, 0, _combine(op, cur, value))
        elif name in ("barrier", "flush", "crit_exit", "atomic_enter",
                      "atomic_exit", "slipstream_set"):
            pass
        elif name == "loop_is_last":
            site = ev.static[0]
            state = self._sched.get(site)
            vm.push(1 if state and state[0] and state[1] > 0 else 0)
        elif name == "single_begin":
            vm.push(1)
        elif name == "crit_enter":
            vm.push(1)
        elif name == "is_master":
            vm.push(1)
        elif name == "tid":
            vm.push(0)
        elif name == "nthreads":
            vm.push(1)
        elif name == "wtime":
            vm.push(float(self._instructions))
        elif name == "astream_probe":
            vm.push(0)                       # reference runner is an R-stream
        elif name == "io_read":
            if self._input_pos >= len(self.inputs):
                raise RuntimeError("read_input(): input exhausted")
            v = self.inputs[self._input_pos]
            self._input_pos += 1
            vm.push(v)
        else:
            raise RuntimeError(f"functional runner: unknown rt {name!r}")


def _combine(op: str, a, b):
    if op == "+":
        return a + b
    if op == "*":
        return a * b
    if op == "max":
        return a if a > b else b
    if op == "min":
        return a if a < b else b
    raise ValueError(op)
