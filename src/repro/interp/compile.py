"""The ``compile`` hot-path tier: bytecode -> exec-generated Python.

The interpreter's translated-stream dispatch (PR 5) still pays one
linear if/elif scan plus tuple unpacking per executed instruction.
This module removes the fetch/decode/dispatch loop entirely: each
:class:`~repro.compiler.bytecode.Code` object is translated *once* into
the source text of a single Python function, compiled with ``exec``,
and driven by :meth:`VM._run_compiled`.  Straight-line bytecode becomes
straight-line Python over height-indexed virtual stack registers
(``s0, s1, ...``), so CPython's own bytecode does the dispatching.

Exactness contract (the golden tables must be bit-identical with the
tier on or off):

* **cycles** -- every instruction's static charge (``OP_COST`` plus the
  per-operator ``BINOP_COST`` / per-intrinsic ``ICALL_COST``, exactly
  as :func:`~repro.interp.interpreter._translate` folds them) is
  constant-folded into per-block accumulator updates ``c = c + <sum>``;
  event returns flush ``vm.pending_cycles += c + <tail>`` just like the
  interpreter flushes its local ``cycles``.  An exception mid-block
  discards the local accumulator in both worlds.
* **yield points** -- shared-memory ops, runtime calls and prints
  return the same event objects in the same order, trying the shell's
  ``fast_read``/``fast_write`` callbacks first; backward jumps decrement
  the same ``MAX_SLICE`` budget and yield ``TimeSlice`` on exhaustion.
* **state sync** -- ``frame.pc``/``frame.stack`` are written back at
  every exit (event return, call/ret frame switch), so snapshots taken
  at barriers and every shell-side observer see exactly the state the
  interpreter would have left.
* **resume** -- the generated function is re-entered through an
  ``_ENTRY`` table mapping resumable pcs (function entry, post-yield,
  post-call, backward-jump targets) to prologue stubs that reload the
  virtual registers from ``frame.stack``; an unknown pc returns the
  ``_DEOPT`` sentinel and the VM transparently falls back to the
  interpreter loop (restore/corrupt/armed-fault paths).

Functions whose bytecode the translator cannot prove statically
well-shaped (unreachable-depth conflicts, unknown ops -- in practice
only hand-built test Codes) raise :class:`NotCompilable`, and the
whole program stays on the interpreter: the tier is all-or-nothing per
image, so a partially compiled call chain can never mix conventions.

The generated source is attached to each ``Code`` as ``gen_src`` when
the image is built (see ``compiler.codegen.compile_program``), pickles
with the image into the ``npb/cache.py`` disk layer (the ``compile=``
key flag keeps tier-on and tier-off images apart), and is exec'd
lazily once per process per program.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Set, Tuple

from ..compiler.bytecode import (BINOP_COST, ICALL_COST, OP_COST,
                                 RT_RETURNS, Code, CompiledProgram)
from .events import Done, IoOut, MemRead, MemWrite, RtCall, TimeSlice
from .interpreter import (MISS, VMError, Frame, _DEOPT, _exp, _log,
                          _op_div, _op_mod, _pow, _sqrt)

__all__ = ["NotCompilable", "generate_source", "attach_generated",
           "compiled_functions"]


class NotCompilable(Exception):
    """This Code cannot be translated; the VM keeps the interpreter."""


def _strict() -> bool:
    """Fail loudly instead of falling back (tests set this)."""
    return os.environ.get("REPRO_COMPILE_STRICT") == "1"


# Names the generated code resolves as globals of its exec namespace.
_BASE_NS = {
    "_MISS": MISS,
    "_div": _op_div, "_mod": _op_mod,
    "_sqrt": _sqrt, "_exp": _exp, "_log": _log, "_pow": _pow,
    "_floor": math.floor,
    "_Frame": Frame,
    "_MemRead": MemRead, "_MemWrite": MemWrite, "_RtCall": RtCall,
    "_IoOut": IoOut, "_Done": Done, "_TimeSlice": TimeSlice,
    "_VMError": VMError, "_DEOPT": _DEOPT,
}

_ARITH_OPS = frozenset(("+", "-", "*"))
_CMP_OPS = frozenset(("<", "<=", ">", ">=", "==", "!="))

#: Ops that may yield a memory event (block-terminating, resumable).
_MEM_YIELDS = frozenset(("gload", "geload", "gstore", "gestore",
                         "ixge", "cblbge"))
#: Ops that always leave the function (resumable at pc+1).
_LEAVES = frozenset(("rt", "print", "call"))

_TERMINAL = _MEM_YIELDS | _LEAVES | frozenset(
    ("jump", "jfalse", "jnone", "cjf", "lcjf", "lljf", "lcbsj", "ret"))


def _bexpr(o: str, a: str, b: str) -> Tuple[str, str]:
    """(full value expression, truthiness expression) for a binop.

    Comparisons keep the interpreter's int results (``1``/``0``, never
    bool -- a printed ``True`` would diverge from the oracle) but hand
    conditional-jump consumers the raw comparison.
    """
    if o in _ARITH_OPS:
        e = "(%s %s %s)" % (a, o, b)
        return e, e
    if o in _CMP_OPS:
        raw = "%s %s %s" % (a, o, b)
        return "(1 if %s else 0)" % raw, raw
    if o == "/":
        e = "_div(%s, %s)" % (a, b)
        return e, e
    if o == "%":
        e = "_mod(%s, %s)" % (a, b)
        return e, e
    raise NotCompilable("unknown binop %r" % (o,))


_ICALL_INLINE = {
    "fabs": "abs(%s)",
    "sqrt": "_sqrt(%s)", "exp": "_exp(%s)", "log": "_log(%s)",
    "floor": "_floor(%s)",
    "pow": "_pow(%s, %s)", "mod": "_mod(%s, %s)",
}


def _cost(ins: Tuple) -> float:
    """One instruction's folded static charge -- must mirror
    :func:`repro.interp.interpreter._translate` exactly."""
    op = ins[0]
    B = BINOP_COST.get
    if op == "binop":
        return OP_COST[op] + B(ins[1], 0)
    if op == "icall":
        name, _n = ins[1]
        return OP_COST[op] + ICALL_COST.get(name, 1)
    one = {"cb": 1, "lb": 1, "cjf": 0, "ll2b": 2, "lcb": 2, "lcbs": 2,
           "llbs": 2, "lcjf": 2, "lljf": 2, "lcbsj": 2}
    if op in one:
        return OP_COST[op] + B(ins[1][one[op]], 0)
    if op in ("cblb", "lbcb", "cblbge"):
        return OP_COST[op] + B(ins[1][1], 0) + B(ins[1][3], 0)
    if op == "lcblb":
        return OP_COST[op] + B(ins[1][2], 0) + B(ins[1][4], 0)
    if op in ("ix", "ixge"):
        a, k1, o1, b, o2, k2, o3, c, o4 = ins[1][:9]
        return OP_COST[op] + sum(B(o, 0) for o in (o1, o2, o3, o4))
    try:
        return OP_COST[op]
    except KeyError:
        raise NotCompilable("unknown opcode %r" % (op,)) from None


def _succ(ins: Tuple, pc: int, d: int) -> List[Tuple[int, int]]:
    """Control successors of one instruction as (pc, depth-after) edges
    (post-resume depth for yielding ops).  Raises on stack underflow."""
    op = ins[0]
    arg = ins[1] if len(ins) > 1 else None

    def need(k: int) -> None:
        if d < k:
            raise NotCompilable("stack underflow at pc=%d (%r)" % (pc, op))

    def fall(nd: int) -> List[Tuple[int, int]]:
        return [(pc + 1, nd)]

    if op in ("const", "lload", "ll2b", "lcb", "lcblb", "ix", "gload",
              "ixge"):
        return fall(d + 1)
    if op == "dup":
        need(1)
        return fall(d + 1)
    if op in ("lstore", "pop", "gstore"):
        need(1)
        return fall(d - 1)
    if op in ("llst", "cs", "lcbs", "llbs"):
        return fall(d)
    if op in ("unop", "aload", "cb", "lb", "cblb", "lbcb", "geload",
              "cblbge"):
        need(1)
        return fall(d)
    if op == "unpack2":
        need(1)
        return fall(d + 1)
    if op == "binop":
        need(2)
        return fall(d - 1)
    if op == "icall":
        _name, n = arg
        need(n)
        return fall(d - n + 1)
    if op in ("astore", "gestore"):
        need(2)
        return fall(d - 2)
    if op == "jump":
        return [(arg, d)]
    if op == "jfalse":
        need(1)
        return [(arg, d - 1), (pc + 1, d - 1)]
    if op == "jnone":
        need(1)
        return [(arg, d - 1), (pc + 1, d)]
    if op == "cjf":
        need(2)
        return [(arg[1], d - 2), (pc + 1, d - 2)]
    if op in ("lcjf", "lljf"):
        return [(arg[3], d), (pc + 1, d)]
    if op == "lcbsj":
        return [(arg[4], d)]
    if op == "call":
        _fidx, n = arg
        need(n)
        return [(pc + 1, d - n + 1)]
    if op == "ret":
        return []
    if op == "rt":
        name, _static, n = arg
        need(n)
        return [(pc + 1, d - n + (1 if name in RT_RETURNS else 0))]
    if op == "print":
        need(arg)
        return [(pc + 1, d - arg)]
    raise NotCompilable("unknown opcode %r" % (op,))


def _analyze(instrs: List[Tuple]) -> Dict[int, int]:
    """Reachable pc -> operand-stack depth before the instruction.

    The depth at every pc must be unique across all paths reaching it
    (it is, for compiler-emitted bytecode); a conflict means we cannot
    assign static register names and the function stays interpreted.
    """
    n = len(instrs)
    depths = {0: 0}
    work = [0]
    while work:
        pc = work.pop()
        for (t, nd) in _succ(instrs[pc], pc, depths[pc]):
            if not 0 <= t < n:
                raise NotCompilable("edge to pc=%d out of range" % t)
            if nd < 0:
                raise NotCompilable("stack underflow at pc=%d" % pc)
            prev = depths.get(t)
            if prev is None:
                depths[t] = nd
                work.append(t)
            elif prev != nd:
                raise NotCompilable(
                    "inconsistent depth at pc=%d (%d vs %d)" % (t, prev, nd))
    return depths


def _entry_pcs(instrs: List[Tuple], depths: Dict[int, int]) -> Set[int]:
    """Pcs the driver may re-enter at: function start, every post-yield
    / post-call resume point, and backward-jump (TimeSlice) targets."""
    entries = {0}
    for pc in depths:
        ins = instrs[pc]
        op = ins[0]
        if op in _MEM_YIELDS or op in _LEAVES:
            if pc + 1 in depths:
                entries.add(pc + 1)
        elif op == "jump" and ins[1] < pc:
            entries.add(ins[1])
        elif op == "lcbsj" and ins[1][4] <= pc:
            entries.add(ins[1][4])
    return entries


def _leader_pcs(instrs: List[Tuple], depths: Dict[int, int],
                entries: Set[int]) -> Set[int]:
    """Basic-block leaders: entries plus every branch edge target."""
    leaders = set(entries)
    for pc in depths:
        ins = instrs[pc]
        op = ins[0]
        if op == "jump":
            leaders.add(ins[1])
        elif op in ("jfalse", "jnone"):
            leaders.add(ins[1])
            leaders.add(pc + 1)
        elif op == "cjf":
            leaders.add(ins[1][1])
            leaders.add(pc + 1)
        elif op in ("lcjf", "lljf"):
            leaders.add(ins[1][3])
            leaders.add(pc + 1)
        elif op == "lcbsj":
            leaders.add(ins[1][4])
    return {pc for pc in leaders if pc in depths}


def _block_pcs(start: int, instrs: List[Tuple],
               leaders: Set[int]) -> List[int]:
    pcs = []
    pc = start
    while True:
        pcs.append(pc)
        if instrs[pc][0] in _TERMINAL or pc + 1 in leaders:
            return pcs
        pc += 1


# --------------------------------------------------------------- emission

def generate_source(code: Code) -> Tuple[str, Tuple]:
    """Translate one Code into ``(python_source, hoisted_constants)``.

    The source defines ``_ENTRY`` (resume-pc -> dispatch id) and
    ``_fn(vm, frame, budget) -> (event_or_None, budget)``; constants
    whose repr does not round-trip (non-finite floats, tuples) are
    hoisted and injected into the exec namespace as ``_K<i>``.
    Raises :class:`NotCompilable` for bytecode the static analysis
    cannot shape.
    """
    instrs = code.instrs
    if not instrs:
        raise NotCompilable("empty code object")
    depths = _analyze(instrs)
    entries = _entry_pcs(instrs, depths)
    leaders = _leader_pcs(instrs, depths, entries)
    blocks = {pc: _block_pcs(pc, instrs, leaders) for pc in leaders}

    # Hot-first dispatch order: blocks in deeper loops get smaller ids
    # so the linear if/elif scan touches inner-loop bodies first.
    back_edges = []
    for pc in depths:
        ins = instrs[pc]
        if ins[0] == "jump" and ins[1] < pc:
            back_edges.append((pc, ins[1]))
        elif ins[0] == "lcbsj" and ins[1][4] <= pc:
            back_edges.append((pc, ins[1][4]))

    def loop_depth(leader: int) -> int:
        return sum(1 for (src, tgt) in back_edges if tgt <= leader <= src)

    ordered = sorted(leaders, key=lambda l: (-loop_depth(l), l))
    bid = {leader: i for i, leader in enumerate(ordered)}

    consts: List = []

    def lit(v) -> str:
        if v is None or isinstance(v, bool) or isinstance(v, (int, str)):
            return repr(v)
        if isinstance(v, float) and math.isfinite(v):
            return repr(v)
        consts.append(v)             # non-finite float, tuple, ...
        return "_K%d" % (len(consts) - 1)

    def sync(k: int) -> str:
        if k == 0:
            return "del S[:]"
        return "S[:] = (%s,)" % ", ".join("s%d" % i for i in range(k))

    def tup(texts: List[str]) -> str:
        if not texts:
            return "()"
        return "(%s,)" % ", ".join(texts)

    def emit_block(leader: int) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        pcs = blocks[leader]
        d = depths[leader]
        deferred: Optional[Tuple[str, str]] = None   # (value, truthiness)
        pend = 0.0

        def w(ind: int, text: str) -> None:
            out.append((ind, text))

        def mat() -> None:
            nonlocal deferred
            if deferred is not None:
                w(0, "s%d = %s" % (d - 1, deferred[0]))
                deferred = None

        def push(full: str, cond: Optional[str] = None) -> None:
            nonlocal d, deferred
            assert deferred is None
            deferred = (full, cond if cond is not None else full)
            d += 1

        def pop1() -> Tuple[str, str, bool]:
            nonlocal d, deferred
            d -= 1
            if deferred is not None:
                t = deferred
                deferred = None
                return (t[0], t[1], True)
            return ("s%d" % d, "s%d" % d, False)

        def pop_vals(n: int) -> List[str]:
            """Oldest-first value texts of the top n entries."""
            texts = [pop1()[0] for _ in range(n)]
            texts.reverse()
            return texts

        def flushed(extra: float = 0.0) -> str:
            tot = pend + extra
            return "c" if tot == 0 else "c + %r" % float(tot)

        def flush_c() -> None:
            if pend:
                w(0, "c = c + %r" % float(pend))

        def goto(ind: int, target_pc: int) -> None:
            w(ind, "b = %d" % bid[target_pc])

        def cond_jump(cond: str, fall_pc: int, target_pc: int) -> None:
            # Truthy condition falls through, falsy jumps -- the shape
            # of every jfalse-family op.
            flush_c()
            w(0, "if %s:" % cond)
            goto(1, fall_pc)
            w(0, "else:")
            goto(1, target_pc)

        def back_jump(target_pc: int) -> None:
            flush_c()
            w(0, "budget = budget - 1")
            w(0, "if budget <= 0:")
            w(1, "frame.pc = %d" % target_pc)
            w(1, sync(d))
            w(1, "vm.pending_cycles = vm.pending_cycles + c")
            w(1, "return _TimeSlice(), budget")
            goto(0, target_pc)

        def mem_load(pc: int, gidx: int, flat: str) -> None:
            # d is the depth after operand pops, before the result push;
            # the interpreter leaves exactly d entries on the stack when
            # it yields MemRead (push happens on resume via vm.push).
            w(0, "v = _MISS if fr is None else fr(%d, %s)" % (gidx, flat))
            w(0, "if v is _MISS:")
            w(1, "frame.pc = %d" % (pc + 1))
            w(1, sync(d))
            w(1, "vm.pending_cycles = vm.pending_cycles + (%s)" % flushed())
            w(1, "vm._pending_push = True")
            w(1, "return _MemRead(%d, %s), budget" % (gidx, flat))
            w(0, "s%d = v" % d)
            flush_c()
            goto(0, pc + 1)

        def mem_store(pc: int, gidx: int, flat: str, val: str) -> None:
            w(0, "if fw is None or not fw(%d, %s, %s):" % (gidx, flat, val))
            w(1, "frame.pc = %d" % (pc + 1))
            w(1, sync(d))
            w(1, "vm.pending_cycles = vm.pending_cycles + (%s)" % flushed())
            w(1, "return _MemWrite(%d, %s, %s), budget" % (gidx, flat, val))
            flush_c()
            goto(0, pc + 1)

        for pc in pcs:
            ins = instrs[pc]
            op = ins[0]
            arg = ins[1] if len(ins) > 1 else None
            pend += _cost(ins)

            if op == "const":
                mat()
                push(lit(arg))
            elif op == "lload":
                mat()
                push("L[%d]" % arg)
            elif op == "lstore":
                t, _c, _df = pop1()
                w(0, "L[%d] = %s" % (arg, t))
            elif op == "llst":
                mat()
                w(0, "L[%d] = L[%d]" % (arg[1], arg[0]))
            elif op == "cs":
                mat()
                w(0, "L[%d] = %s" % (arg[1], lit(arg[0])))
            elif op == "dup":
                mat()
                push("s%d" % (d - 1))
            elif op == "pop":
                t, _c, was_def = pop1()
                if was_def:
                    # The interpreter evaluated this expression when it
                    # was pushed; dropping it unevaluated could skip a
                    # trap (division, wild index) the A-stream relies on.
                    w(0, t)
            elif op == "unop":
                t, _c, _df = pop1()
                if arg == "-":
                    push("(-%s)" % t)
                else:
                    push("(0 if %s else 1)" % t)
            elif op == "unpack2":
                mat()
                t, _c, _df = pop1()
                w(0, "s%d, s%d = %s" % (d, d + 1, t))
                d += 2
            elif op == "binop":
                b_t, a_t = pop1()[0], pop1()[0]
                push(*_bexpr(arg, a_t, b_t))
            elif op == "icall":
                name, n = arg
                if name in ("min", "max"):
                    mat()
                    a_t, b_t = pop_vals(2)
                    o = "<" if name == "min" else ">"
                    push("(%s if %s %s %s else %s)" % (a_t, a_t, o, b_t, b_t))
                elif name in _ICALL_INLINE:
                    push(_ICALL_INLINE[name] % tuple(pop_vals(n)))
                else:
                    raise NotCompilable("unknown intrinsic %r" % (name,))
            elif op == "aload":
                t, _c, _df = pop1()
                push("L[%d][%s].item()" % (arg, t))
            elif op == "astore":
                vals = pop_vals(2)           # [flat, value]; only the
                w(0, "L[%d][%s] = %s" % (arg, vals[0], vals[1]))
                # value can be deferred, and Python evaluates the RHS
                # before the subscripted store -- interpreter order.
            elif op == "ll2b":
                mat()
                push(*_bexpr(arg[2], "L[%d]" % arg[0], "L[%d]" % arg[1]))
            elif op == "cb":
                t, _c, _df = pop1()
                push(*_bexpr(arg[1], t, lit(arg[0])))
            elif op == "lcb":
                mat()
                push(*_bexpr(arg[2], "L[%d]" % arg[0], lit(arg[1])))
            elif op == "lb":
                t, _c, _df = pop1()
                push(*_bexpr(arg[1], t, "L[%d]" % arg[0]))
            elif op == "lcbs":
                mat()
                e = _bexpr(arg[2], "L[%d]" % arg[0], lit(arg[1]))[0]
                w(0, "L[%d] = %s" % (arg[3], e))
            elif op == "llbs":
                mat()
                e = _bexpr(arg[2], "L[%d]" % arg[0], "L[%d]" % arg[1])[0]
                w(0, "L[%d] = %s" % (arg[3], e))
            elif op == "cblb":
                t, _c, _df = pop1()
                e1 = _bexpr(arg[1], t, lit(arg[0]))[0]
                push(*_bexpr(arg[3], e1, "L[%d]" % arg[2]))
            elif op == "lbcb":
                t, _c, _df = pop1()
                e1 = _bexpr(arg[1], t, "L[%d]" % arg[0])[0]
                push(*_bexpr(arg[3], e1, lit(arg[2])))
            elif op == "lcblb":
                mat()
                e1 = _bexpr(arg[2], "L[%d]" % arg[0], lit(arg[1]))[0]
                push(*_bexpr(arg[4], e1, "L[%d]" % arg[3]))
            elif op in ("ix", "ixge"):
                a, k1, o1, b, o2, k2, o3, cslot, o4 = arg[:9]
                e = _bexpr(o1, "L[%d]" % a, lit(k1))[0]
                e = _bexpr(o2, e, "L[%d]" % b)[0]
                e = _bexpr(o3, e, lit(k2))[0]
                e = _bexpr(o4, e, "L[%d]" % cslot)[0]
                if op == "ix":
                    mat()
                    push(e)
                else:
                    mat()
                    w(0, "x = %s" % e)
                    mem_load(pc, arg[9], "x")
            elif op == "gload":
                mat()
                mem_load(pc, arg, "0")
            elif op == "geload":
                mat()                        # flat is used twice
                t, _c, _df = pop1()
                mem_load(pc, arg, t)
            elif op == "cblbge":
                t, _c, _df = pop1()
                e1 = _bexpr(arg[1], t, lit(arg[0]))[0]
                e = _bexpr(arg[3], e1, "L[%d]" % arg[2])[0]
                w(0, "x = %s" % e)
                mem_load(pc, arg[4], "x")
            elif op == "gstore":
                mat()                        # value is used twice
                t, _c, _df = pop1()
                mem_store(pc, arg, "0", t)
            elif op == "gestore":
                mat()
                vals = pop_vals(2)           # [flat, value], both temps
                mem_store(pc, arg, vals[0], vals[1])
            elif op == "jump":
                mat()
                if arg < pc:
                    back_jump(arg)
                else:
                    flush_c()
                    goto(0, arg)
            elif op == "jfalse":
                _t, cond, _df = pop1()
                cond_jump(cond, pc + 1, arg)
            elif op == "jnone":
                mat()
                flush_c()
                w(0, "if s%d is None:" % (d - 1))
                goto(1, arg)
                w(0, "else:")
                goto(1, pc + 1)
            elif op == "cjf":
                b_t, a_t = pop1()[0], pop1()[0]
                cond_jump(_bexpr(arg[0], a_t, b_t)[1], pc + 1, arg[1])
            elif op == "lcjf":
                mat()
                cond = _bexpr(arg[2], "L[%d]" % arg[0], lit(arg[1]))[1]
                cond_jump(cond, pc + 1, arg[3])
            elif op == "lljf":
                mat()
                cond = _bexpr(arg[2], "L[%d]" % arg[0],
                              "L[%d]" % arg[1])[1]
                cond_jump(cond, pc + 1, arg[3])
            elif op == "lcbsj":
                mat()
                e = _bexpr(arg[2], "L[%d]" % arg[0], lit(arg[1]))[0]
                w(0, "L[%d] = %s" % (arg[3], e))
                if arg[4] <= pc:
                    back_jump(arg[4])
                else:
                    flush_c()
                    goto(0, arg[4])
            elif op == "call":
                mat()
                fidx, n = arg
                args = pop_vals(n)
                w(0, "frame.pc = %d" % (pc + 1))
                w(0, sync(d))
                w(0, "vm.pending_cycles = vm.pending_cycles + (%s)"
                  % flushed())
                w(0, "vm.frames.append(_Frame(%d, _FUNCS[%d], %s))"
                  % (fidx, fidx, tup(args)))
                w(0, "return None, budget")
            elif op == "ret":
                mat()
                rv = "s%d" % (d - 1) if d > 0 else "0"
                w(0, "vm.frames.pop()")
                w(0, "vm.pending_cycles = vm.pending_cycles + (%s)"
                  % flushed())
                w(0, "if vm.frames:")
                w(1, "vm.frames[-1].stack.append(%s)" % rv)
                w(1, "return None, budget")
                w(0, "vm.done = True")
                w(0, "vm.result = %s" % rv)
                w(0, "return _Done(%s), budget" % rv)
            elif op == "rt":
                mat()
                name, static, n = arg
                args = pop_vals(n)
                w(0, "frame.pc = %d" % (pc + 1))
                w(0, sync(d))
                w(0, "vm.pending_cycles = vm.pending_cycles + (%s)"
                  % flushed(1.0))
                w(0, "return _RtCall(%s, %s, %s), budget"
                  % (lit(name), lit(static), tup(args)))
            elif op == "print":
                mat()
                args = pop_vals(arg)
                w(0, "frame.pc = %d" % (pc + 1))
                w(0, sync(d))
                w(0, "vm.pending_cycles = vm.pending_cycles + (%s)"
                  % flushed(1.0))
                w(0, "return _IoOut(%s), budget" % tup(args))
            else:
                raise NotCompilable("unknown opcode %r" % (op,))

        if instrs[pcs[-1]][0] not in _TERMINAL:
            # Plain fall-through into the next leader.
            mat()
            flush_c()
            goto(0, pcs[-1] + 1)
        return out

    bodies = {leader: emit_block(leader) for leader in ordered}

    # Entry stubs: reload the virtual registers from the synced stack,
    # then dispatch to the block.  Depth-0 entries need no prologue and
    # map straight to the block id.
    entry_map: Dict[int, int] = {}
    stubs: List[Tuple[int, int]] = []        # (stub id, entry pc)
    next_id = len(ordered)
    for e in sorted(entries):
        if depths[e] == 0:
            entry_map[e] = bid[e]
        else:
            entry_map[e] = next_id
            stubs.append((next_id, e))
            next_id += 1

    lines: List[str] = []

    def w(ind: int, text: str) -> None:
        lines.append("    " * ind + text)

    w(0, "_ENTRY = {%s}" % ", ".join(
        "%d: %d" % (pc, i) for pc, i in sorted(entry_map.items())))
    w(0, "def _fn(vm, frame, budget):")
    w(1, "b = _ENTRY.get(frame.pc, -1)")
    w(1, "if b < 0:")
    w(2, "return _DEOPT, budget")
    w(1, "S = frame.stack")
    w(1, "L = frame.locals")
    w(1, "fr = vm.fast_read")
    w(1, "fw = vm.fast_write")
    w(1, "c = 0.0")
    w(1, "try:")
    w(2, "while 1:")
    kw = "if"
    for leader in ordered:
        w(3, "%s b == %d:" % (kw, bid[leader]))
        kw = "elif"
        for ind, text in bodies[leader]:
            w(4 + ind, text)
    for sid, e in stubs:
        w(3, "elif b == %d:" % sid)
        for i in range(depths[e]):
            w(4, "s%d = S[%d]" % (i, i))
        w(4, "b = %d" % bid[e])
    w(3, "else:")
    w(4, "return _DEOPT, budget")
    # Same wrap as the interpreter loop: a wild index (array op or a
    # fast-path callback's store access) surfaces as VMError either way.
    w(1, "except IndexError:")
    w(2, 'raise _VMError("VM fault in %s (compiled) near pc=%%d"'
         " %% frame.pc) from None" % code.name)
    return "\n".join(lines) + "\n", tuple(consts)


# ------------------------------------------------------------ program API

def attach_generated(program: CompiledProgram) -> bool:
    """Attach generated source (``Code.gen_src``) to every function of
    an image; all-or-nothing so a compiled caller can never call into
    an uncompiled callee mid-image.  Returns True when attached."""
    generated = []
    try:
        for code in program.funcs:
            generated.append(generate_source(code))
    except NotCompilable:
        if _strict():
            raise
        return False
    for code, gs in zip(program.funcs, generated):
        code.gen_src = gs
    return True


def compiled_functions(program: CompiledProgram) -> Optional[List]:
    """exec the attached sources into callables, one per function,
    cached on the program (and rebuilt after unpickling -- the cache is
    dropped by ``CompiledProgram.__getstate__``).  Returns None when
    any function lacks ``gen_src``: the VM keeps the interpreter."""
    try:
        return program._cfns
    except AttributeError:
        pass
    fns: List = []
    result: Optional[List] = None
    for code in program.funcs:
        gs = getattr(code, "gen_src", None)
        if gs is None:
            break
        src, consts = gs
        ns = dict(_BASE_NS)
        ns["_FUNCS"] = program.funcs
        for i, v in enumerate(consts):
            ns["_K%d" % i] = v
        try:
            exec(compile(src, "<repro-compiled:%s>" % code.name,
                         "exec"), ns)
        except SyntaxError:
            if _strict():
                raise
            break
        fns.append(ns["_fn"])
    else:
        result = fns
    program._cfns = result
    return result
