"""Yield-point events the VM hands to its hosting thread shell.

The VM executes private computation synchronously (accumulating busy
cycles) and surfaces exactly four kinds of externally-visible actions,
which the shell services against the simulated machine:

* shared-memory reads/writes (timed through the coherence protocol, and
  -- for A-streams -- stores are suppressed / converted to prefetches),
* runtime-library calls (barriers, scheduling, locks, ...),
* output I/O,
* termination.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = ["MemRead", "MemWrite", "RtCall", "IoOut", "Done", "TimeSlice"]


class TimeSlice:
    """The VM voluntarily yields after a long synchronous run (spin
    loops served by cache hits must still advance simulated time)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TimeSlice()"


class MemRead:
    """Load of shared global ``gidx`` element ``flat`` (0 for scalars)."""

    __slots__ = ("gidx", "flat")

    def __init__(self, gidx: int, flat: int):
        self.gidx = gidx
        self.flat = flat

    def __repr__(self) -> str:
        return f"MemRead(g{self.gidx}[{self.flat}])"


class MemWrite:
    """Store to shared global ``gidx`` element ``flat``."""

    __slots__ = ("gidx", "flat", "value")

    def __init__(self, gidx: int, flat: int, value: Any):
        self.gidx = gidx
        self.flat = flat
        self.value = value

    def __repr__(self) -> str:
        return f"MemWrite(g{self.gidx}[{self.flat}]={self.value!r})"


class RtCall:
    """Runtime-library call: barrier, sched_*, crit_*, parallel_*, ..."""

    __slots__ = ("name", "static", "args")

    def __init__(self, name: str, static: Tuple, args: Tuple):
        self.name = name
        self.static = static
        self.args = args

    def __repr__(self) -> str:
        return f"RtCall({self.name}, static={self.static}, args={self.args})"


class IoOut:
    """print(...) -- output I/O (skipped by A-streams)."""

    __slots__ = ("values",)

    def __init__(self, values: Tuple):
        self.values = values

    def __repr__(self) -> str:
        return f"IoOut({self.values!r})"


class Done:
    """The VM's entry function returned."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"Done({self.value!r})"
