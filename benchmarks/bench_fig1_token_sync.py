"""Figure 1: synchronization between slipstream A-stream and R-stream.

Figure 1 is the paper's mechanism diagram: tokens allocated at region
start, consumed by the A-stream to skip a barrier, inserted by the
R-stream at barrier entry (local sync) or exit (global sync).  This
benchmark traces the mechanism live on the event engine for both
policies and checks the defining property of each: under one-token
local sync the A-stream crosses barrier k as soon as the R-stream
*enters* barrier k-1's successor window (one session ahead); under
zero-token global sync it crosses only when the R-stream *exits* the
same barrier."""

from conftest import publish
from repro.harness import render_table
from repro.sim import Engine
from repro.slipstream import PairChannel

BARRIER_PERIOD = 1000.0      # R-stream work per session (cycles)
A_PERIOD = 400.0             # reduced A-stream work per session


def _trace(sync_type: str, tokens: int, sessions: int = 4):
    eng = Engine()
    ch = PairChannel(eng, 0)
    ch.begin_region(sync_type, tokens)
    events = []

    def r_stream():
        for k in range(sessions):
            yield BARRIER_PERIOD
            events.append((eng.now, "R", f"enter barrier {k}"))
            if sync_type == "LOCAL_SYNC":
                ch.insert_token()
                events.append((eng.now, "R", f"insert token (entry {k})"))
            yield 50.0           # global barrier latency
            events.append((eng.now, "R", f"exit barrier {k}"))
            if sync_type == "GLOBAL_SYNC":
                ch.insert_token()
                events.append((eng.now, "R", f"insert token (exit {k})"))

    def a_stream():
        for k in range(sessions):
            yield A_PERIOD
            events.append((eng.now, "A", f"reach barrier {k}"))
            yield from ch.consume_token()
            events.append((eng.now, "A", f"consume token, skip {k}"))

    eng.process(r_stream(), name="R")
    eng.process(a_stream(), name="A")
    eng.run()
    return events, ch


def test_fig1_token_mechanism(once):
    (local_ev, local_ch), (global_ev, global_ch) = once(
        lambda: (_trace("LOCAL_SYNC", 1), _trace("GLOBAL_SYNC", 0)))

    def crossing(events, k):
        return next(t for t, s, what in events
                    if s == "A" and what == f"consume token, skip {k}")

    # L1: initial token lets A skip barrier 0 immediately (t=A_PERIOD);
    # thereafter it runs one session ahead of R's barrier *entries*.
    assert crossing(local_ev, 0) == A_PERIOD
    assert crossing(local_ev, 1) == BARRIER_PERIOD
    # G0: A crosses barrier k exactly at R's *exit* of barrier k.
    r_exit0 = next(t for t, s, w in global_ev
                   if s == "R" and w == "exit barrier 0")
    assert crossing(global_ev, 0) == r_exit0
    assert local_ch.tokens_consumed == global_ch.tokens_consumed == 4

    rows = [[f"{t:7.0f}", "one-token local", s, w] for t, s, w in local_ev]
    rows += [[f"{t:7.0f}", "zero-token global", s, w]
             for t, s, w in global_ev]
    publish("fig1_token_sync",
            render_table(["cycle", "policy", "stream", "event"], rows,
                         "Figure 1: A-R token synchronization trace"))
