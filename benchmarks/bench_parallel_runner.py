"""Perf baseline for the parallel experiment execution layer.

Measures the static smoke sweep three ways -- serial with a cold
compile cache, serial warm, and under a process pool -- records the
per-stage compile/simulate split, and writes the whole measurement to
``BENCH_parallel_runner.json`` at the repository root so future PRs
have a wall-clock trajectory to compare against (cycle counts are
additionally asserted bit-identical across contexts, the determinism
guarantee of ``repro.harness.exec``).

Knobs (see conftest): ``REPRO_BENCH_SIZE``, ``REPRO_BENCH_CMPS``;
``REPRO_BENCH_POOL_JOBS`` sets the pool width measured here (default
``min(4, cpu_count)``).
"""

import json
import os
import pathlib
import platform
import time

from conftest import bench_cfg, bench_size, publish
from repro.config import PAPER_MACHINE
from repro.harness import (ProcessPoolContext, SerialContext,
                           render_table)
from repro.harness.exec import static_specs
from repro.npb import clear_cache

BASELINE_PATH = pathlib.Path(__file__).parent.parent / \
    "BENCH_parallel_runner.json"

#: The CI smoke sweep: every execution mode, both sync policies, on the
#: two benchmarks with the most distinct communication patterns.
SMOKE_BENCHMARKS = ("bt", "cg")
SMOKE_CONFIGS = ("single", "double", "G0", "L1")


def _pool_jobs() -> int:
    # At least 2 so the pool machinery (fork, pickle, merge) is always
    # exercised; on a multicore host, up to 4.
    return int(os.environ.get("REPRO_BENCH_POOL_JOBS",
                              max(2, min(4, os.cpu_count() or 1))))


def _stage_split(runs):
    compile_s = sum(r.timing["compile_s"] for r in runs)
    sim_s = sum(r.timing["sim_s"] for r in runs)
    return {"compile_s": round(compile_s, 4), "sim_s": round(sim_s, 4)}


def _measure():
    specs = static_specs(bench_cfg(), bench_size(),
                         SMOKE_BENCHMARKS, SMOKE_CONFIGS)
    clear_cache()                       # cold in-memory compile cache
    t0 = time.perf_counter()
    cold = SerialContext().run(specs)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = SerialContext().run(specs)   # compile cache now hot
    t_warm = time.perf_counter() - t0

    jobs = _pool_jobs()
    t0 = time.perf_counter()
    pooled = ProcessPoolContext(jobs=jobs).run(specs)
    t_pool = time.perf_counter() - t0

    assert [r.cycles for r in warm] == [r.cycles for r in cold]
    assert [r.cycles for r in pooled] == [r.cycles for r in cold]
    return {
        "sweep": {"benchmarks": SMOKE_BENCHMARKS, "configs": SMOKE_CONFIGS,
                  "size": bench_size(), "n_cmps": bench_cfg().n_cmps,
                  "runs": len(specs)},
        # Per-run simulated cycles: the regression gate
        # (python -m repro.harness.regress) re-runs this sweep and
        # demands an exact match, so intended cycle changes must
        # regenerate this file (see README.md).
        "cycles": {f"{r.bench}/{r.config}": r.cycles for r in cold},
        "host": {"cpu_count": os.cpu_count(),
                 "platform": platform.platform(),
                 "python": platform.python_version()},
        "serial_cold_s": round(t_cold, 3),
        "serial_warm_s": round(t_warm, 3),
        "pool_jobs": jobs,
        "pool_s": round(t_pool, 3),
        "pool_speedup_vs_serial": round(t_cold / t_pool, 3),
        "stages_cold": _stage_split(cold),
        "stages_warm": _stage_split(warm),
        "cycles_bit_identical_across_contexts": True,
    }


def test_parallel_runner_baseline(once):
    data = once(_measure)
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
    rows = [
        ["serial (cold cache)", f"{data['serial_cold_s']:.2f}",
         f"{data['stages_cold']['compile_s']:.3f}",
         f"{data['stages_cold']['sim_s']:.2f}"],
        ["serial (warm cache)", f"{data['serial_warm_s']:.2f}",
         f"{data['stages_warm']['compile_s']:.3f}",
         f"{data['stages_warm']['sim_s']:.2f}"],
        [f"pool ({data['pool_jobs']} jobs)", f"{data['pool_s']:.2f}",
         "-", "-"],
    ]
    publish("parallel_runner", render_table(
        ["context", "wall s", "compile s", "sim s"], rows,
        f"execution contexts, {len(SMOKE_BENCHMARKS) * len(SMOKE_CONFIGS)}"
        f"-run static sweep ({data['sweep']['size']} size, "
        f"{data['sweep']['n_cmps']} CMPs, "
        f"host cpus={data['host']['cpu_count']})"))
    # Determinism is asserted inside _measure(); wall-clock claims about
    # pool speedup are only meaningful with real cores to fan out on.
    if (os.cpu_count() or 1) >= 4:
        assert data["pool_speedup_vs_serial"] > 1.5


# --------------------------------------------------- observability cost

def _measure_null_overhead():
    """Wall-clock of the test-size static sweep with observability off
    (NullSink) vs the default AggregateSink, warm compile cache,
    best-of-3 interleaved so cache/scheduler drift hits both arms."""
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    kw = dict(cfg=cfg, size="test", benchmarks=SMOKE_BENCHMARKS,
              configs=SMOKE_CONFIGS)
    agg = static_specs(kw["cfg"], kw["size"], kw["benchmarks"],
                       kw["configs"])
    null = static_specs(kw["cfg"], kw["size"], kw["benchmarks"],
                        kw["configs"], obs="null")
    ctx = SerialContext()
    baseline = ctx.run(agg)              # also warms the compile cache
    agg_s, null_s = [], []
    for _ in range(3):
        t0 = time.perf_counter()
        ctx.run(agg)
        agg_s.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        runs = ctx.run(null)
        null_s.append(time.perf_counter() - t0)
    assert [r.cycles for r in runs] == [r.cycles for r in baseline]
    return {
        "sweep": {"benchmarks": SMOKE_BENCHMARKS,
                  "configs": SMOKE_CONFIGS, "size": "test", "n_cmps": 4},
        "aggregate_s": round(min(agg_s), 3),
        "null_s": round(min(null_s), 3),
        "null_over_aggregate": round(min(null_s) / min(agg_s), 4),
    }


def test_null_sink_overhead(once):
    data = once(_measure_null_overhead)
    if BASELINE_PATH.exists():           # fold into the shared baseline
        merged = json.loads(BASELINE_PATH.read_text())
        merged["null_sink"] = data
        BASELINE_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    publish("null_sink_overhead", render_table(
        ["sink", "wall s", "vs aggregate"],
        [["aggregate (default)", f"{data['aggregate_s']:.2f}", "1.000"],
         ["null (observability off)", f"{data['null_s']:.2f}",
          f"{data['null_over_aggregate']:.3f}"]],
        "observability-off cost, 8-run static sweep (test size, 4 CMPs)"))
    # The off switch must actually be an off switch: disabling
    # observability may not cost more than 2% over the default path
    # (in practice it is faster -- no span/counter bookkeeping).
    assert data["null_over_aggregate"] <= 1.02, data


# --------------------------------------------------- telemetry cost

def _measure_telemetry_overhead():
    """Wall-clock of the test-size static sweep with harness telemetry
    disabled (NULL_TELEMETRY, the default) vs a live on-disk session,
    warm compile cache, best-of-3 interleaved.  Same discipline as the
    NullSink guard above: the disabled path's no-op hooks must be
    free, and enabling must never change a cycle count."""
    import tempfile

    from repro.harness import ExecutionPipeline, SerialTransport, Telemetry

    cfg = PAPER_MACHINE.with_(n_cmps=4)
    specs = static_specs(cfg, "test", SMOKE_BENCHMARKS, SMOKE_CONFIGS)
    baseline = ExecutionPipeline(transport=SerialTransport()).run(specs)

    def run_off():
        t0 = time.perf_counter()
        runs = ExecutionPipeline(transport=SerialTransport()).run(specs)
        return runs, time.perf_counter() - t0

    off_s, on_s = [], []
    last_tel = None
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(4):
            def run_on(rep=rep):
                nonlocal last_tel
                last_tel = Telemetry(root=f"{tmp}/telemetry-{rep}")
                t0 = time.perf_counter()
                runs = ExecutionPipeline(transport=SerialTransport(),
                                         telemetry=last_tel).run(specs)
                dt = time.perf_counter() - t0
                last_tel.close()
                return runs, dt
            # Alternate arm order per rep so slow-drift noise (cache
            # pressure, scheduler) cannot bias one arm systematically.
            first, second = ((run_off, run_on) if rep % 2 == 0
                             else (run_on, run_off))
            a_runs, a_dt = first()
            b_runs, b_dt = second()
            if rep % 2 == 0:
                (off_runs, off_dt), (on_runs, on_dt) = \
                    (a_runs, a_dt), (b_runs, b_dt)
            else:
                (on_runs, on_dt), (off_runs, off_dt) = \
                    (a_runs, a_dt), (b_runs, b_dt)
            off_s.append(off_dt)
            on_s.append(on_dt)
    base = [r.cycles for r in baseline]
    assert [r.cycles for r in off_runs] == base
    assert [r.cycles for r in on_runs] == base
    return {
        "sweep": {"benchmarks": SMOKE_BENCHMARKS,
                  "configs": SMOKE_CONFIGS, "size": "test", "n_cmps": 4},
        "off_s": round(min(off_s), 3),
        "on_s": round(min(on_s), 3),
        "off_over_on": round(min(off_s) / min(on_s), 4),
        "on_over_off": round(min(on_s) / min(off_s), 4),
        "exec_hist_on": last_tel.metrics.histograms[
            "unit.exec_s"].snapshot(),
        "cycles_bit_identical_on_off": True,
    }


def test_telemetry_overhead(once):
    data = once(_measure_telemetry_overhead)
    if BASELINE_PATH.exists():           # fold into the shared baseline
        merged = json.loads(BASELINE_PATH.read_text())
        merged["telemetry"] = data
        BASELINE_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    publish("telemetry_overhead", render_table(
        ["telemetry", "wall s", "vs on"],
        [["off (default)", f"{data['off_s']:.2f}",
          f"{data['off_over_on']:.3f}"],
         ["on (event log + metrics)", f"{data['on_s']:.2f}", "1.000"]],
        "harness-telemetry cost, 8-run static sweep (test size, 4 CMPs)"))
    # Zero-cost-off, NullSink discipline: the disabled path (the
    # default everywhere) may not cost more than 2% over the recorded
    # one -- if it does, the no-op hooks are not actually no-ops.
    assert data["off_over_on"] <= 1.02, data


# --------------------------------------------------- hazard-site cost

def _measure_hazard_overhead():
    """Wall-clock of the test-size static sweep through a checkpointed
    + memoized pipeline with hazard sites disarmed (the default
    everywhere) vs armed with an empty schedule (every publish/claim
    site consults the plan, nothing ever fires), warm compile cache,
    best-of-4 interleaved.  Same discipline as the telemetry guard:
    the disarmed check is one cached pid comparison per site and must
    be free, and arming must never change a cycle count."""
    import tempfile

    from repro.harness import (CheckpointJournal, ExecutionPipeline,
                               MemoStore, SerialTransport)
    from repro.harness import hazards
    from repro.harness.hazards import HazardConfig

    cfg = PAPER_MACHINE.with_(n_cmps=4)
    specs = static_specs(cfg, "test", SMOKE_BENCHMARKS, SMOKE_CONFIGS)
    baseline = ExecutionPipeline().run(specs)   # warms the compile cache

    def sweep(root, tag):
        # fresh journal/memo per arm+rep: every run pays the full
        # publish path (atomic_pickle x2 per unit), where the hazard
        # seam lives
        pipe = ExecutionPipeline(
            transport=SerialTransport(),
            journal=CheckpointJournal(f"{root}/j-{tag}"),
            memo=MemoStore(f"{root}/m-{tag}"))
        t0 = time.perf_counter()
        runs = pipe.run(specs)
        return runs, time.perf_counter() - t0

    def run_disarmed(root, rep):
        hazards.disarm()
        return sweep(root, f"off-{rep}")

    def run_armed(root, rep):
        plan = hazards.arm(HazardConfig(0))
        plan.schedule = {k: {} for k in plan.schedule}  # fires nothing
        plan._seen = {k: 0 for k in plan.schedule}
        try:
            return sweep(root, f"on-{rep}")
        finally:
            hazards.disarm()

    off_s, on_s = [], []
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(4):
            # Alternate arm order per rep (telemetry-guard discipline).
            first, second = ((run_disarmed, run_armed) if rep % 2 == 0
                             else (run_armed, run_disarmed))
            a_runs, a_dt = first(tmp, rep)
            b_runs, b_dt = second(tmp, rep)
            if rep % 2 == 0:
                (off_runs, off_dt), (on_runs, on_dt) = \
                    (a_runs, a_dt), (b_runs, b_dt)
            else:
                (on_runs, on_dt), (off_runs, off_dt) = \
                    (a_runs, a_dt), (b_runs, b_dt)
            off_s.append(off_dt)
            on_s.append(on_dt)
    base = [r.cycles for r in baseline]
    assert [r.cycles for r in off_runs] == base
    assert [r.cycles for r in on_runs] == base
    return {
        "sweep": {"benchmarks": SMOKE_BENCHMARKS,
                  "configs": SMOKE_CONFIGS, "size": "test", "n_cmps": 4},
        "disarmed_s": round(min(off_s), 3),
        "armed_empty_s": round(min(on_s), 3),
        "disarmed_over_armed": round(min(off_s) / min(on_s), 4),
        "cycles_bit_identical_armed_disarmed": True,
    }


def test_hazards_disarmed_overhead(once):
    data = once(_measure_hazard_overhead)
    if BASELINE_PATH.exists():           # fold into the shared baseline
        merged = json.loads(BASELINE_PATH.read_text())
        merged["hazards"] = data
        BASELINE_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    publish("hazards_disarmed_overhead", render_table(
        ["hazard sites", "wall s", "vs armed"],
        [["disarmed (default)", f"{data['disarmed_s']:.2f}",
          f"{data['disarmed_over_armed']:.3f}"],
         ["armed, empty schedule", f"{data['armed_empty_s']:.2f}",
          "1.000"]],
        "hazard-site cost, 8-run checkpointed sweep (test size, 4 CMPs)"))
    # The injector must be invisible until armed: the disarmed path
    # (every production run) may not cost more than 2% over an armed
    # plan that never fires -- same bar as the telemetry off switch.
    assert data["disarmed_over_armed"] <= 1.02, data
