"""Figure 2: slipstream and double-mode performance, static scheduling.

Regenerates both panels of Figure 2 for the five mini-NPB benchmarks on
the 16-CMP machine: speedup of double mode and of slipstream (one-token
local "L1" and zero-token global "G0") normalized to single-mode
execution, plus the execution-time breakdown (busy, memory, lock,
barrier, scheduling, job-wait).

Paper shape targets (§5.1): the best slipstream beats the best of
single/double on every benchmark, with gains in the 5-20% band
(13.5% average); static scheduling time is negligible."""

from conftest import at_paper_scale, get_static_suite, publish
from repro.harness import (render_breakdowns, render_speedups,
                           speedup_table, summary_gains)


def test_fig2_static_speedups_and_breakdown(once):
    suite = once(get_static_suite)

    gains = summary_gains(suite)
    avg = sum(gains.values()) / len(gains)
    if at_paper_scale():
        for bench, gain in gains.items():
            assert gain > 1.0, \
                f"{bench}: slipstream does not beat best(single,double)"
        assert 1.03 < avg < 1.30, \
            f"average gain {avg:.3f} out of paper band"
    # Static scheduling time is negligible (§5.1 / Figure 2).
    for bench, runs in suite.items():
        bd = runs["single"].result.r_breakdown
        assert bd.get("scheduling", 0) / sum(bd.values()) < 0.02

    speeds = speedup_table(suite)
    text = render_speedups(
        suite, title="Figure 2a: speedup over single mode "
                     "(static scheduling, 16 CMPs)")
    text += "\n\nper-benchmark best-slip/best-base gains: " + ", ".join(
        f"{b.upper()}={g:.3f}" for b, g in sorted(gains.items()))
    text += f"\naverage gain: {avg:.3f}"
    text += "\n\n" + render_breakdowns(
        suite, title="Figure 2b: execution-time breakdown "
                     "(normalized to single-mode total)")
    publish("fig2_static", text)
    if at_paper_scale():
        # Loose-vs-conservative preference split exists (paper: CG, LU,
        # MG favored local; BT and SP global).
        prefer_g0 = [b for b in speeds if speeds[b]["G0"] >= speeds[b]["L1"]]
        prefer_l1 = [b for b in speeds if speeds[b]["L1"] > speeds[b]["G0"]]
        assert prefer_g0 and prefer_l1
