"""Ablation: slipstream self-invalidation (§2, §3.2.1).

"The reference stream of the reduced task represents a view of the
future that can be used for coherence optimizations, such as
self-invalidation", and "slipstream self-invalidation is enabled when
synchronization model is one-token global".  The mechanism is optional
in our implementation (the paper's §5 evaluates prefetching only);
this ablation measures it on the migration-heavy kernels, reports the
lines dropped, and verifies numerical results are unaffected."""

from conftest import bench_cfg, bench_size, publish
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv, run_program


def _pair(bench: str):
    spec = REGISTRY[bench]
    size = bench_size()
    image = spec.compile(size)
    cfg = bench_cfg()
    env = RuntimeEnv(slipstream=("GLOBAL_SYNC", 1), slipstream_set=True)
    out = {}
    for selfinv in (False, True):
        r = run_program(image, cfg=cfg, mode="slipstream", env=env,
                        selfinv=selfinv)
        spec.verify(r.store, size)
        out[selfinv] = r
    return out


def test_ablation_self_invalidation(once):
    results = once(lambda: {b: _pair(b) for b in ("sp", "mg")})
    rows = []
    for bench, pair in results.items():
        off, on = pair[False], pair[True]
        rows.append([bench.upper(), f"{off.cycles:.0f}", f"{on.cycles:.0f}",
                     f"{off.cycles / on.cycles:.3f}"])
        # Correct results in both configurations were already verified;
        # the mechanism must have a measurable (possibly negative)
        # effect only when it actually dropped lines.
        assert on.cycles > 0 and off.cycles > 0
    publish("ablation_selfinv",
            render_table(["bench", "selfinv OFF (cycles)",
                          "selfinv ON (cycles)", "ON speedup vs OFF"],
                         rows,
                         "Ablation: epoch-based self-invalidation "
                         "(one-token global sync)"))
