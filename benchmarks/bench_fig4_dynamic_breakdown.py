"""Figure 4: execution-time breakdown under dynamic scheduling.

§5.2: LU is excluded (its static scheduling is hard-coded); the
comparison is against one task/CMP only; only zero-token-global
slipstream synchronization applies (the per-chunk scheduling handoff
makes looser policies converge to G0); CG uses a chunk equal to half
its static block.

Paper shape targets: visible scheduling overhead in the base runs
(≈11% average in the paper), higher stall/busy ratio than static
scheduling, and slipstream still improving every benchmark (5-20%,
12% average)."""

from conftest import (at_paper_scale, get_dynamic_suite,
                      get_static_suite, publish)
from repro.harness import render_breakdowns, render_speedups


def test_fig4_dynamic_breakdown(once):
    suite = once(get_dynamic_suite)

    gains = {}
    scheds = {}
    for bench, runs in suite.items():
        gains[bench] = runs["single"].cycles / runs["G0"].cycles
        bd = runs["single"].result.r_breakdown
        scheds[bench] = bd.get("scheduling", 0.0) / sum(bd.values())

    avg = sum(gains.values()) / len(gains)
    if at_paper_scale():
        # Dynamic scheduling shows real scheduling overhead...
        assert sum(scheds.values()) / len(scheds) > 0.02
        # ...and slipstream wins overall.  Mini-CG is the documented
        # exception: its loops are so much finer-grained than real CG's
        # that the serialized scheduler swallows ~70% of its time,
        # leaving slipstream neutral there (see EXPERIMENTS.md).
        winners = sum(1 for g in gains.values() if g > 1.0)
        assert winners >= len(gains) - 1, gains
        for bench, gain in gains.items():
            assert gain > 0.97, f"{bench}: slipstream hurts under dynamic"
        assert 1.02 < avg < 1.35
        # The paper observes dynamic scheduling degrades these
        # benchmarks relative to static (lost cache affinity).
        static = get_static_suite()
        degraded = sum(
            1 for b in suite
            if suite[b]["single"].cycles > static[b]["single"].cycles)
        assert degraded >= len(suite) - 1

    text = render_speedups(
        suite, title="Figure 4a: speedup over single mode "
                     "(dynamic scheduling, 16 CMPs)")
    text += "\n\nper-benchmark slipstream gain: " + ", ".join(
        f"{b.upper()}={g:.3f}" for b, g in sorted(gains.items()))
    text += f"\naverage gain: {avg:.3f}"
    text += "\nbase scheduling-time fraction: " + ", ".join(
        f"{b.upper()}={s:.3f}" for b, s in sorted(scheds.items()))
    text += "\n\n" + render_breakdowns(
        suite, title="Figure 4b: execution-time breakdown "
                     "(dynamic scheduling)")
    publish("fig4_dynamic", text)
