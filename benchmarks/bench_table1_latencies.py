"""Table 1: simulated system parameters.

Validates that the protocol engine composes the paper's SimOS memory
parameters into exactly the quoted minimum latencies: "The minimum
latency to bring data into the L2 cache on a remote miss is 290 ns,
assuming no contention.  A local miss requires 170 ns."
"""

import pytest

from conftest import publish
from repro.config import PAPER_MACHINE
from repro.harness import render_table
from repro.mem import CoherentMemorySystem
from repro.mem.address import SHARED_BASE
from repro.sim import Engine


def _probe_latencies():
    cfg = PAPER_MACHINE.with_(placement="round_robin")
    eng = Engine()
    ms = CoherentMemorySystem(eng, cfg)
    local = eng.run_process(ms.load(0, 0, SHARED_BASE))          # home 0
    remote = eng.run_process(
        ms.load(0, 0, SHARED_BASE + cfg.page_bytes))             # home 1
    # dirty three-hop: node 1 owns, node 2 reads, home is node 0
    eng.run_process(ms.store(1, 0, SHARED_BASE + 2 * cfg.line_bytes))
    dirty = eng.run_process(ms.load(2, 0, SHARED_BASE + 2 * cfg.line_bytes))
    return {
        "local L2 miss": cfg.ns(local.cycles),
        "remote clean miss": cfg.ns(remote.cycles),
        "remote dirty (3-hop) miss": cfg.ns(dirty.cycles),
        "L2 hit (cycles)": cfg.l2.hit_cycles,
        "L1 hit (cycles)": cfg.l1.hit_cycles,
    }


def test_table1_parameters_and_latencies(once):
    measured = once(_probe_latencies)
    assert measured["local L2 miss"] == pytest.approx(170.0)
    assert measured["remote clean miss"] == pytest.approx(290.0)
    assert measured["remote dirty (3-hop) miss"] > 290.0

    rows = [[k, v] for k, v in PAPER_MACHINE.describe().items()]
    rows += [[f"measured {k}", f"{v:.1f}" if isinstance(v, float) else v]
             for k, v in measured.items()]
    publish("table1_parameters",
            render_table(["parameter", "value"], rows,
                         "Table 1: simulated system parameters "
                         "(paper values + measured latencies)"))
