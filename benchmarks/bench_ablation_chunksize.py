"""Ablation: dynamic-scheduling chunk size (§3.2.2, §5.2).

"The behavior of dynamic/guided scheduling relies on scheduling
parameters, such as chunk size.  The choice of this parameter is
dependent on iteration count, degree of parallelism, and the underlying
hardware" -- and "it is advisable to have a big enough amount of work
... to reduce the impact of dynamic scheduling overheads."  This sweep
quantifies that: CG under dynamic scheduling across chunk sizes, single
vs slipstream."""

from conftest import bench_cfg, bench_size, publish
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv, run_program


def _sweep():
    spec = REGISTRY["cg"]
    size = bench_size()
    n = spec.params(size)["n"]
    image = spec.compile(size)
    cfg = bench_cfg()
    chunks = sorted({max(1, n // 64), max(1, n // 32),
                     max(1, n // (2 * cfg.n_cmps)), max(1, n // 8)})
    rows = []
    for chunk in chunks:
        cycles = {}
        for config, mode, slip in [("single", "single", None),
                                   ("G0", "slipstream",
                                    ("GLOBAL_SYNC", 0))]:
            env = RuntimeEnv(schedule=("dynamic", chunk))
            if slip:
                env.slipstream = slip
                env.slipstream_set = True
            r = run_program(image, cfg=cfg, mode=mode, env=env)
            spec.verify(r.store, size)
            cycles[config] = r.cycles
            sched = r.r_breakdown.get("scheduling", 0.0)
            total = sum(r.r_breakdown.values())
            cycles[config + "_schedfrac"] = sched / total
        rows.append((chunk, cycles))
    return rows


def test_ablation_dynamic_chunk_size(once):
    rows = once(_sweep)
    # Smaller chunks mean more scheduling decisions: the scheduling-time
    # fraction must fall as the chunk grows.
    fracs = [c["single_schedfrac"] for _, c in rows]
    assert fracs[0] >= fracs[-1]
    table = [[chunk, f"{c['single']:.0f}", f"{c['G0']:.0f}",
              f"{c['single'] / c['G0']:.3f}",
              f"{c['single_schedfrac']:.3f}"]
             for chunk, c in rows]
    publish("ablation_chunksize",
            render_table(["chunk", "single cycles", "slip-G0 cycles",
                          "slip gain", "sched fraction (single)"],
                         table,
                         "Ablation: CG dynamic-scheduling chunk size"))
