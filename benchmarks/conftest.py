"""Shared infrastructure for the paper-figure benchmarks.

Figures 2 and 3 come from the same set of static-scheduling runs, and
Figures 4 and 5 from the same dynamic-scheduling runs, so the suites
are computed once and memoized across benchmark files.

Environment knobs (for quicker exploratory runs):

* ``REPRO_BENCH_SIZE``  -- "bench" (default, paper-scale) or "test";
* ``REPRO_BENCH_CMPS``  -- number of CMPs (default 16, the paper's);
* ``REPRO_BENCH_JOBS``  -- worker processes for the suite's independent
  simulations (default 1 = serial; results are bit-identical either
  way, only wall-clock changes);
* ``REPRO_BENCH_MEMO``  -- "1" to serve repeated units from the shared
  run-result memo store (bit-identical; useful when iterating on the
  figure code rather than the simulator).

Rendered outputs are also written to ``benchmarks/results/*.txt`` so
EXPERIMENTS.md can reference a stable artifact.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.config import PAPER_MACHINE
from repro.harness import (ExecutionPipeline, MemoStore, PoolTransport,
                           SerialTransport, run_dynamic_suite,
                           run_static_suite)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_cache = {}


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "bench")


def bench_cfg():
    n = int(os.environ.get("REPRO_BENCH_CMPS", "16"))
    return PAPER_MACHINE.with_(n_cmps=n)


def bench_context():
    """Execution pipeline for the suites (REPRO_BENCH_JOBS workers,
    optional REPRO_BENCH_MEMO run-result store)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    transport = PoolTransport(jobs=jobs) if jobs > 1 else SerialTransport()
    memo = (MemoStore()
            if os.environ.get("REPRO_BENCH_MEMO", "") == "1" else None)
    return ExecutionPipeline(transport=transport, memo=memo)


def get_static_suite():
    key = ("static", bench_size(), bench_cfg().n_cmps)
    if key not in _cache:
        _cache[key] = run_static_suite(cfg=bench_cfg(), size=bench_size(),
                                       context=bench_context())
    return _cache[key]


def get_dynamic_suite():
    key = ("dynamic", bench_size(), bench_cfg().n_cmps)
    if key not in _cache:
        _cache[key] = run_dynamic_suite(cfg=bench_cfg(), size=bench_size(),
                                        context=bench_context())
    return _cache[key]


def at_paper_scale() -> bool:
    """Shape assertions (who wins, by how much) only hold in the paper's
    configuration: 16 CMPs, bench-size problems.  Reduced-scale runs
    (REPRO_BENCH_SIZE=test / REPRO_BENCH_CMPS<16) still regenerate the
    tables but skip the shape checks."""
    return bench_size() == "bench" and bench_cfg().n_cmps == 16


def publish(name: str, text: str) -> None:
    """Print a figure's rows and persist them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (simulations are long
    and deterministic; statistical repetition adds nothing)."""
    def run(fn, *args, **kw):
        return benchmark.pedantic(fn, args=args, kwargs=kw,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)
    return run
