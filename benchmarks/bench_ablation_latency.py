"""Ablation: sensitivity to communication latency.

The slipstream premise (§1, §2) is that the mechanism pays off where
communication overheads dominate.  A direct corollary: making the
interconnect slower should widen slipstream's advantage, and making it
near-instant should shrink it.  This sweep scales NetTime across
{0.5x, 1x, 2x} the Table-1 value on SP (the most migration-heavy
kernel) and checks the monotone trend."""

from conftest import at_paper_scale, bench_cfg, bench_size, publish
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv, run_program

SCALES = (0.5, 1.0, 2.0)


def _sweep():
    spec = REGISTRY["sp"]
    size = bench_size()
    image = spec.compile(size)
    base_cfg = bench_cfg()
    rows = []
    for scale in SCALES:
        cfg = base_cfg.with_(net_time_ns=base_cfg.net_time_ns * scale)
        cyc = {}
        for config, mode, slip in [("single", "single", None),
                                   ("G0", "slipstream",
                                    ("GLOBAL_SYNC", 0))]:
            env = None
            if slip:
                env = RuntimeEnv(slipstream=slip, slipstream_set=True)
            r = run_program(image, cfg=cfg, mode=mode, env=env)
            spec.verify(r.store, size)
            cyc[config] = r.cycles
        rows.append((scale, cfg.remote_miss_ns, cyc))
    return rows


def test_ablation_latency_sensitivity(once):
    rows = once(_sweep)
    gains = [c["single"] / c["G0"] for _, _, c in rows]
    if at_paper_scale():
        # Slipstream's advantage grows with communication latency.
        assert gains[-1] > gains[0], gains
    table = [[f"{s:.1f}x", f"{remote:.0f}", f"{c['single']:.0f}",
              f"{c['G0']:.0f}", f"{c['single'] / c['G0']:.3f}"]
             for (s, remote, c) in rows]
    publish("ablation_latency",
            render_table(["NetTime scale", "remote miss (ns)",
                          "single cycles", "slip-G0 cycles", "slip gain"],
                         table,
                         "Ablation: SP slipstream gain vs interconnect "
                         "latency"))
