"""Figure 3: breakdown of shared-data memory requests, static scheduling.

For the two slipstream synchronization policies, classifies every
shared-data fill as A/R x Timely/Late/Only, separately for reads and
read-exclusives -- the paper's Figure 3.

Paper shape targets (§5.1): the loose policy (one-token local) shows
*more* A-Timely and *fewer* A-Late read fills than the conservative
zero-token global policy (the A-stream is allowed to run further
ahead); premature prefetches (A-Only) stay a small fraction; the
A-stream provides substantial read-exclusive coverage via store->
prefetch conversion."""

from conftest import at_paper_scale, get_static_suite, publish
from repro.harness import render_classification


def _avg(suite, cfg, kind, label):
    vals = [runs[cfg].result.classes.breakdown(kind)[label]
            for runs in suite.values()]
    return sum(vals) / len(vals)


def test_fig3_request_classification(once):
    suite = once(get_static_suite)

    g0_cov = sum(
        runs["G0"].result.classes.coverage("rdex")
        for runs in suite.values()) / len(suite)
    if at_paper_scale():
        # On the benchmarks that prefer loose synchronization (CG, MG;
        # §5.1 "CG, LU, and MG favor the loose synchronization"), L1
        # lets the A-stream run further ahead: more A-Timely fills.
        for b in ("cg", "mg"):
            reads_l1 = suite[b]["L1"].result.classes.breakdown("read")
            reads_g0 = suite[b]["G0"].result.classes.breakdown("read")
            assert reads_l1["A-Timely"] > reads_g0["A-Timely"], b
        # And across the suite, the tight policy holds the A-stream
        # close enough that more of its fills are still in flight when
        # the R-stream arrives (paper: 34% late under G0 vs 15% under
        # L1) -- an average-level claim, as in the paper.
        assert _avg(suite, "G0", "read", "A-Late") > \
            _avg(suite, "L1", "read", "A-Late")
        # Conversely, loose sync raises premature prefetches (paper: 8%
        # A-Only under L1 vs 3% under G0) -- on our migration-heavy
        # ADI kernels this is why BT and SP prefer G0.
        assert _avg(suite, "L1", "read", "A-Only") > \
            _avg(suite, "G0", "read", "A-Only")
        # Premature prefetches stay the minority under G0.
        assert _avg(suite, "G0", "read", "A-Only") < 0.15
        # Read-exclusive coverage from converted stores is substantial.
        assert g0_cov > 0.30

    text = render_classification(
        suite, configs=("G0", "L1"),
        title="Figure 3: shared-data request breakdown "
              "(static scheduling, fraction of fills per kind)")
    text += (f"\n\naverages: G0 A-Timely(read)="
             f"{_avg(suite, 'G0', 'read', 'A-Timely'):.3f} "
             f"A-Late(read)={_avg(suite, 'G0', 'read', 'A-Late'):.3f} "
             f"A-Only(read)={_avg(suite, 'G0', 'read', 'A-Only'):.3f}; "
             f"L1 A-Timely(read)="
             f"{_avg(suite, 'L1', 'read', 'A-Timely'):.3f} "
             f"A-Late(read)={_avg(suite, 'L1', 'read', 'A-Late'):.3f} "
             f"A-Only(read)={_avg(suite, 'L1', 'read', 'A-Only'):.3f}; "
             f"G0 rdex coverage={g0_cov:.3f}")
    publish("fig3_requests_static", text)
