"""Ablation: A-stream construct policy (§3.1).

The paper prescribes per-construct A-stream behaviour: skip critical
sections ("they may cause unnecessary migration of data"), execute
atomic updates ("the data prefetched by the A-stream are highly likely
not to be migrated").  This ablation measures a critical/atomic-heavy
synthetic workload with the prescribed policy vs. the inverted one
(A-streams executing critical bodies)."""

from conftest import bench_cfg, publish
from repro.compiler import compile_source
from repro.harness import render_table
from repro.runtime import run_program

SOURCE = """
double hist[64];
double counter;
int i;
void main() {
    int it;
    counter = 0.0;
    #pragma omp parallel for
    for (i = 0; i < 64; i = i + 1) hist[i] = 0.0;
    #pragma omp parallel private(it)
    {
        for (it = 0; it < 4; it = it + 1) {
            #pragma omp for
            for (i = 0; i < 512; i = i + 1) {
                #pragma omp atomic
                hist[(i * 37) % 64] = hist[(i * 37) % 64] + 1.0;
            }
            #pragma omp for
            for (i = 0; i < 128; i = i + 1) {
                #pragma omp critical
                { counter = counter + 1.0; }
            }
        }
    }
    print("counter", counter);
}
"""


def _run(a_exec_critical: bool):
    image = compile_source(SOURCE)
    r = run_program(image, cfg=bench_cfg(), mode="slipstream",
                    a_exec_critical=a_exec_critical)
    assert r.store.value("counter") == 4 * 128.0
    assert float(sum(r.store.array("hist"))) == 4 * 512.0
    return r


def test_ablation_a_stream_construct_policy(once):
    skip, execute = once(lambda: (_run(False), _run(True)))
    rows = [
        ["A skips critical (paper §3.1)", f"{skip.cycles:.0f}",
         f"{skip.r_breakdown.get('lock', 0):.0f}"],
        ["A executes critical (ablation)", f"{execute.cycles:.0f}",
         f"{execute.r_breakdown.get('lock', 0):.0f}"],
    ]
    publish("ablation_constructs",
            render_table(["policy", "cycles", "R lock time"],
                         rows,
                         "Ablation: A-stream critical-section policy "
                         "(atomic/critical-heavy workload)"))
