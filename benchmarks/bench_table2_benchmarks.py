"""Table 2: the benchmark suite.

The paper lists the NPB 2.3 OpenMP benchmarks used (BT, CG, LU, MG, SP)
with problem sizes chosen "to achieve a reasonable simulation time" and
to sit where communication starts to dominate.  This regenerates the
analogous inventory for the mini-NPB kernels, and sanity-runs every
kernel at test size to confirm the inventory is live."""

from conftest import publish
from repro.config import PAPER_MACHINE
from repro.harness import benchmark_inventory, render_table, run_benchmark


def _inventory_and_smoke():
    rows = benchmark_inventory()
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    for row in rows:
        run = run_benchmark(row["benchmark"].lower(), "single",
                            cfg=cfg, size="test")
        row["test cycles (4 CMPs)"] = int(run.cycles)
    return rows


def test_table2_benchmark_inventory(once):
    rows = _inventory_and_smoke()
    assert {r["benchmark"] for r in rows} == {"BT", "CG", "LU", "MG", "SP"}
    headers = list(rows[0].keys())
    publish("table2_benchmarks",
            render_table(headers, [[r[h] for h in headers] for r in rows],
                         "Table 2: mini-NPB benchmark inventory"))
