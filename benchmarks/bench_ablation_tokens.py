"""Ablation: token count and insertion point (§2.2, §3.3).

The paper exposes "two ways to control A-R synchronization: the number
of tokens, and the insertion point of the tokens (local vs global)" and
§5.1 shows performance is sensitive to the choice.  This sweep runs CG
and SP across {GLOBAL, LOCAL} x {0, 1, 2, 4} initial tokens -- exactly
the parameter space of the slipstream directive / OMP_SLIPSTREAM."""

import itertools

from conftest import bench_cfg, bench_size, publish
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv, run_program

SWEEP = [("GLOBAL_SYNC", t) for t in (0, 1, 2)] + \
        [("LOCAL_SYNC", t) for t in (1, 2, 4)]


def _sweep(bench: str):
    spec = REGISTRY[bench]
    size = bench_size()
    image = spec.compile(size)
    cfg = bench_cfg()
    base = run_program(image, cfg=cfg, mode="single")
    spec.verify(base.store, size)
    rows = []
    for sync, tokens in SWEEP:
        env = RuntimeEnv(slipstream=(sync, tokens), slipstream_set=True)
        r = run_program(image, cfg=cfg, mode="slipstream", env=env)
        spec.verify(r.store, size)
        rows.append((sync, tokens, r.cycles, base.cycles / r.cycles))
    return base.cycles, rows


def test_ablation_token_policy(once):
    results = once(lambda: {b: _sweep(b) for b in ("cg", "sp")})
    table_rows = []
    for bench, (base_cycles, rows) in results.items():
        speedups = [s for *_, s in rows]
        # The policy choice must actually matter (paper: "sensitivity of
        # performance to the type of A-R synchronization").
        assert max(speedups) - min(speedups) > 0.005
        for sync, tokens, cycles, speedup in rows:
            table_rows.append([bench.upper(), sync, tokens,
                               f"{cycles:.0f}", f"{speedup:.3f}"])
    publish("ablation_tokens",
            render_table(["bench", "sync", "tokens", "cycles",
                          "speedup vs single"],
                         table_rows,
                         "Ablation: A-R synchronization policy sweep"))
