"""Ablation: cache affinity and dynamic scheduling (§3.2.2).

The paper: dynamic scheduling "does not respect cache affinity ...
there is no guarantee under dynamic scheduling that the same thread
will be assigned the same data across iterations", but "cache affinity
is not a problem for embarrassingly parallel applications.  For this
class of application, dynamic scheduling is apparently advantageous."

Measured here directly: the dynamic/static slowdown ratio for iterative,
data-reusing CG vs. communication-free mini-EP."""

from conftest import at_paper_scale, bench_cfg, bench_size, publish
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import RuntimeEnv, run_program


def _ratio(bench: str, chunk: int):
    spec = REGISTRY[bench]
    size = bench_size()
    image = spec.compile(size)
    cfg = bench_cfg()
    out = {}
    for kind in ("static", "dynamic"):
        env = RuntimeEnv(schedule=(kind, chunk if kind == "dynamic"
                                   else None))
        r = run_program(image, cfg=cfg, mode="single", env=env)
        spec.verify(r.store, size)
        out[kind] = r
    return out


def test_ablation_ep_vs_cg_affinity(once):
    results = once(lambda: {
        "ep": _ratio("ep", chunk=max(
            1, REGISTRY["ep"].params(bench_size())["n"]
            // (4 * bench_cfg().n_cmps))),
        "cg": _ratio("cg", chunk=max(
            1, REGISTRY["cg"].params(bench_size())["n"]
            // (2 * bench_cfg().n_cmps))),
    })
    rows = []
    ratios = {}
    for bench, runs in results.items():
        ratio = runs["dynamic"].cycles / runs["static"].cycles
        ratios[bench] = ratio
        rows.append([bench.upper(), f"{runs['static'].cycles:.0f}",
                     f"{runs['dynamic'].cycles:.0f}", f"{ratio:.3f}"])
    if at_paper_scale():
        # EP tolerates dynamic scheduling much better than the
        # affinity-sensitive iterative kernel.
        assert ratios["ep"] < ratios["cg"]
    publish("ablation_ep_affinity",
            render_table(["bench", "static cycles", "dynamic cycles",
                          "dynamic/static"],
                         rows,
                         "Ablation: dynamic-scheduling penalty, "
                         "EP (no reuse) vs CG (iterative reuse)"))
