"""Scalability: slipstream as "an additional opportunity for extending
the scalability of an application" (§1, §7).

Runs CG at a fixed problem size across machine widths and shows the
fixed-size scaling wall: single-mode speedup flattens as CMPs grow
while communication overheads rise, and slipstream extends the curve by
spending the second processor per CMP on latency reduction instead of
parallelism."""

from conftest import bench_size, publish
from repro.config import PAPER_MACHINE
from repro.harness import render_table
from repro.npb import REGISTRY
from repro.runtime import run_program

WIDTHS = (4, 8, 16)


#: A larger CG than the Figure-2 size, so the 4-CMP end of the curve
#: still scales and the 16-CMP end sits at the communication knee.
SCALING_PARAMS = dict(n=4096, nnz=8, iters=2)


def _scaling():
    spec = REGISTRY["cg"]
    size = bench_size()
    params = SCALING_PARAMS if size == "bench" else {}
    image = spec.compile(size, **params)
    rows = []
    for n in WIDTHS:
        cfg = PAPER_MACHINE.with_(n_cmps=n)
        cyc = {}
        for mode in ("single", "double", "slipstream"):
            r = run_program(image, cfg=cfg, mode=mode)
            spec.verify(r.store, size, **params)
            cyc[mode] = r.cycles
        rows.append((n, cyc))
    return rows


def test_scaling_curve(once):
    rows = once(_scaling)
    if bench_size() == "bench":
        # Fixed problem: single-mode time decreases with machine size...
        singles = [c["single"] for _, c in rows]
        assert singles[0] > singles[-1]
        # ...but sub-linearly (the scaling wall): 4x CMPs buys < 4x.
        assert singles[0] / singles[-1] < (WIDTHS[-1] / WIDTHS[0]) * 0.9
        # Past the knee, doubling tasks per CMP is no longer the answer
        # (§1's motivation for spending the second CPU on slipstream).
        at16 = rows[-1][1]
        assert at16["double"] > at16["single"] * 0.9
    table = [[n, f"{c['single']:.0f}", f"{c['double']:.0f}",
              f"{c['slipstream']:.0f}",
              f"{c['single'] / c['slipstream']:.3f}"]
             for n, c in rows]
    publish("scaling",
            render_table(["CMPs", "single", "double", "slipstream (G0)",
                          "slip speedup vs single"],
                         table, "CG fixed-size scaling across machine "
                                "widths"))
