"""Hot-path ablation benchmark: the three ``REPRO_HOTPATH`` tiers.

Runs the test-size static suite serially under each tier combination
-- all off, each tier alone, all on -- **interleaved** and min-of-reps
(CPU time) so host noise and cache drift hit every arm equally, then:

* asserts the simulated cycle map is bit-identical across every arm
  (the tiers' cycle-exactness contract);
* records the per-tier and all-on speedups, a fast-path eligibility
  census from the ``mem`` arm, and explanatory notes to
  ``BENCH_hotpath.json`` at the repository root.

The suite here is pinned to test size / 4 CMPs (the regress smoke
scale) regardless of ``REPRO_BENCH_SIZE`` so the recorded trajectory
stays comparable across hosts and PRs.
"""

import json
import os
import pathlib
import platform
import time

from conftest import publish
from repro.config import PAPER_MACHINE
from repro.harness import render_table, run_static_suite

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_hotpath.json"

ARMS = ("", "engine", "mem", "fuse", "engine,mem,fuse")
REPS = int(os.environ.get("REPRO_BENCH_HOTPATH_REPS", "3"))


def _suite():
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    return run_static_suite(cfg=cfg, size="test")


def _cycle_map(suite):
    return {f"{b}/{c}": run.cycles
            for b, row in suite.items() for c, run in row.items()}


def _mem_census(suite):
    """Fast-path eligibility census: how many misses could plan."""
    agg = {}
    for row in suite.values():
        for run in row.values():
            for k in ("fast_misses", "local", "remote", "remote3"):
                agg[k] = agg.get(k, 0) + (run.result.mem_stats.get(k) or 0)
    misses = agg.get("local", 0) + agg.get("remote", 0) + \
        agg.get("remote3", 0)
    return {"fast_misses": agg.get("fast_misses", 0),
            "generator_misses": misses - agg.get("fast_misses", 0),
            "eligible_fraction": round(
                agg.get("fast_misses", 0) / misses, 4) if misses else 0.0}


def _measure():
    prior = os.environ.get("REPRO_HOTPATH")
    try:
        cycle_maps = {}
        census = None

        def arm(tiers):
            os.environ["REPRO_HOTPATH"] = tiers
            t0 = time.process_time()
            suite = _suite()
            dt = time.process_time() - t0
            cycle_maps.setdefault(tiers, _cycle_map(suite))
            return dt, suite

        for tiers in ARMS:                      # warm compile caches
            _, suite = arm(tiers)
            if tiers == "engine,mem,fuse":
                census = _mem_census(suite)
        cpu = {tiers: [] for tiers in ARMS}
        for _ in range(REPS):                   # interleaved reps
            for tiers in ARMS:
                cpu[tiers].append(arm(tiers)[0])

        base = cycle_maps[""]
        for tiers, cmap in cycle_maps.items():
            assert cmap == base, f"cycle drift with REPRO_HOTPATH={tiers!r}"
        t_off = min(cpu[""])
        arms_out = {}
        for tiers in ARMS:
            t = min(cpu[tiers])
            arms_out[tiers or "off"] = {
                "cpu_min_s": round(t, 3),
                "speedup_vs_off": round(t_off / t, 3),
                "cpu_reps": [round(x, 3) for x in cpu[tiers]],
            }
        return {
            "sweep": {"suite": "static", "size": "test", "n_cmps": 4,
                      "runs": len(base), "reps": REPS,
                      "timer": "process_time, min of interleaved reps"},
            "cycles": base,
            "cycles_bit_identical_across_arms": True,
            "arms": arms_out,
            "mem_fast_path": census,
            "host": {"cpu_count": os.cpu_count(),
                     "platform": platform.platform(),
                     "python": platform.python_version()},
            "notes": {
                "fuse": "Superinstruction fusion carries the speedup: "
                        "it removes ~55% of VM dispatches on this suite "
                        "(6.9M -> 3.0M), and VM dispatch dominates the "
                        "serial profile.",
                "engine": "Bucket queue is wall-clock parity with heapq "
                          "on this suite: event times are mostly "
                          "distinct floats, so bucketing saves few heap "
                          "operations; kept for the zero-delay/collision "
                          "regimes (timer cascades, wide barriers) and "
                          "as the fast-path quiescence probe.",
                "mem": "The planner is timing-neutral here because the "
                       "suite's misses are genuinely contended: the "
                       "census shows only ~1% of misses find every "
                       "server idle, the line lock free, and the engine "
                       "quiescent (dominant fallback reasons measured: "
                       "busy servers, 3-hop ownership, pending "
                       "invalidations, queued events inside the "
                       "horizon).  The tier pays off on uncontended "
                       "single-CPU phases, not this smoke sweep.",
            },
        }
    finally:
        if prior is None:
            os.environ.pop("REPRO_HOTPATH", None)
        else:
            os.environ["REPRO_HOTPATH"] = prior


def test_hotpath_ablation(once):
    data = once(_measure)
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
    rows = [[tiers, f"{d['cpu_min_s']:.2f}", f"{d['speedup_vs_off']:.3f}"]
            for tiers, d in data["arms"].items()]
    publish("hotpath_ablation", render_table(
        ["REPRO_HOTPATH", "cpu s (min)", "speedup vs off"], rows,
        f"hot-path tier ablation, {data['sweep']['runs']}-run static "
        f"suite (test size, 4 CMPs, {data['sweep']['reps']} interleaved "
        f"reps)"))
    # The exactness contract is the hard gate; the wall-clock floor is
    # deliberately below the recorded ~1.5x so noisy hosts don't flake.
    assert data["cycles_bit_identical_across_arms"]
    assert data["arms"]["fuse"]["speedup_vs_off"] > 1.15, data["arms"]
