"""Hot-path ablation benchmark: the four ``REPRO_HOTPATH`` tiers.

Runs the test-size static suite serially under each tier combination
-- all off, each tier alone, compile+fuse, all on -- **interleaved**
and min-of-reps
(CPU time) so host noise and cache drift hit every arm equally, then:

* asserts the simulated cycle map is bit-identical across every arm
  (the tiers' cycle-exactness contract);
* records the per-tier and all-on speedups, the forecast-planner
  census (planned / aborted / fell back, by reason), and explanatory
  notes to ``BENCH_hotpath.json`` at the repository root.

The suite here is pinned to test size / 4 CMPs (the regress smoke
scale) regardless of ``REPRO_BENCH_SIZE`` so the recorded trajectory
stays comparable across hosts and PRs.
"""

import json
import os
import pathlib
import platform
import time

from conftest import publish
from repro.config import PAPER_MACHINE
from repro.harness import render_table, run_static_suite
from repro.hotpath import reset_for_tests

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_hotpath.json"

ARMS = ("", "engine", "mem", "fuse", "compile", "compile,fuse",
        "engine,mem,fuse,compile")
REPS = int(os.environ.get("REPRO_BENCH_HOTPATH_REPS", "3"))


def _suite():
    cfg = PAPER_MACHINE.with_(n_cmps=4)
    return run_static_suite(cfg=cfg, size="test")


def _vm_only_bench():
    """Dispatch-only microbenchmark: a compute-bound kernel driven as a
    bare VM (events serviced from a flat store), so the measurement
    isolates what the ``compile``/``fuse`` tiers actually touch --
    fetch/decode/dispatch -- from the memory-system and engine work
    that dominates the machine-level suite."""
    from repro.compiler import compile_source
    from repro.interp import VM, Done, MemRead, MemWrite
    prog = compile_source("""
double acc;
void main() {
    int i;
    int k;
    double x;
    double y;
    acc = 0.0;
    k = 0;
    while (k < 60) {
        x = 1.0; y = 0.5; i = 0;
        while (i < 4000) {
            x = x + y * 0.25 - min(x, y);
            y = max(y, x / 3.0) + fabs(x - y) * 0.125;
            i = i + 1;
        }
        acc = acc + x + y;
        k = k + 1;
    }
    print(acc);
}
""")
    t0 = time.process_time()
    vm = VM(prog, prog.main_index)
    store = {}
    for g in prog.globals:
        store[g.index] = [0.0] * g.size if g.dims else (g.init or 0)
    while True:
        ev = vm.run()
        vm.take_cycles()
        k = type(ev)
        if k is MemRead:
            v = store[ev.gidx]
            vm.push(v[ev.flat] if isinstance(v, list) else v)
        elif k is MemWrite:
            v = store[ev.gidx]
            if isinstance(v, list):
                v[ev.flat] = ev.value
            else:
                store[ev.gidx] = ev.value
        elif k is Done:
            return time.process_time() - t0
        else:
            vm.push(0)


def _cycle_map(suite):
    return {f"{b}/{c}": run.cycles
            for b, row in suite.items() for c, run in row.items()}


def _mem_census(suite):
    """Forecast census: how many misses planned, aborted, or fell back
    to the generator transaction -- and for what reason (the planner's
    ``mem.forecast.*`` / ``mem.fallback.*`` counter taxonomy)."""
    agg = {}
    for row in suite.values():
        for run in row.values():
            for k, v in run.result.mem_stats.items():
                if (k in ("fast_misses", "local", "remote", "remote3")
                        or k.startswith("forecast")
                        or k.startswith("fallback")):
                    agg[k] = agg.get(k, 0) + v
    planned = agg.get("forecast.hit", 0)
    aborted = agg.get("forecast.abort", 0)
    fellback = sum(v for k, v in agg.items() if k.startswith("fallback."))
    # Denominator: every GETS/GETX transaction that reached the planner
    # -- demand misses *and* prefetch-exclusive conversions (which never
    # count a local/remote level of their own).
    attempts = planned + aborted + fellback
    frac = (lambda n: round(n / attempts, 4) if attempts else 0.0)
    return {
        "miss_transactions": attempts,
        "demand_misses": agg.get("local", 0) + agg.get("remote", 0)
        + agg.get("remote3", 0),
        "forecast_planned": planned,
        "forecast_aborted": aborted,
        "generator_fallbacks": fellback,
        "planned_fraction": frac(planned),
        "planned_or_aborted_fraction": frac(planned + aborted),
        "abort_reasons": {k.split(".", 2)[2]: v for k, v in sorted(
            agg.items()) if k.startswith("forecast.abort.")},
        "fallback_reasons": {k.split(".", 1)[1]: v for k, v in sorted(
            agg.items()) if k.startswith("fallback.")},
        "lock_waits_planned_through": agg.get("forecast.lock_wait", 0),
        "epoch_moved": agg.get("forecast.epoch_moved", 0),
    }


def _measure():
    prior = os.environ.get("REPRO_HOTPATH")
    try:
        cycle_maps = {}
        census = None

        def arm(tiers):
            os.environ["REPRO_HOTPATH"] = tiers
            reset_for_tests()           # tiers latch once per process
            t0 = time.process_time()
            suite = _suite()
            dt = time.process_time() - t0
            cycle_maps.setdefault(tiers, _cycle_map(suite))
            return dt, suite

        for tiers in ARMS:                      # warm compile caches
            _, suite = arm(tiers)
            if tiers == "engine,mem,fuse,compile":
                census = _mem_census(suite)
        cpu = {tiers: [] for tiers in ARMS}
        vm_cpu = {tiers: [] for tiers in ARMS}
        for _ in range(REPS):                   # interleaved reps
            for tiers in ARMS:
                cpu[tiers].append(arm(tiers)[0])
                vm_cpu[tiers].append(_vm_only_bench())

        base = cycle_maps[""]
        for tiers, cmap in cycle_maps.items():
            assert cmap == base, f"cycle drift with REPRO_HOTPATH={tiers!r}"
        t_off = min(cpu[""])
        vm_off = min(vm_cpu[""])
        arms_out = {}
        for tiers in ARMS:
            t = min(cpu[tiers])
            arms_out[tiers or "off"] = {
                "cpu_min_s": round(t, 3),
                "speedup_vs_off": round(t_off / t, 3),
                "cpu_reps": [round(x, 3) for x in cpu[tiers]],
                "vm_dispatch_speedup_vs_off": round(
                    vm_off / min(vm_cpu[tiers]), 3),
            }
        return {
            "sweep": {"suite": "static", "size": "test", "n_cmps": 4,
                      "runs": len(base), "reps": REPS,
                      "timer": "process_time, min of interleaved reps",
                      "vm_dispatch": "per-arm compute-bound bare-VM "
                                     "microbenchmark isolating what the "
                                     "fuse/compile tiers touch"},
            "cycles": base,
            "cycles_bit_identical_across_arms": True,
            "arms": arms_out,
            "mem_fast_path": census,
            "host": {"cpu_count": os.cpu_count(),
                     "platform": platform.platform(),
                     "python": platform.python_version()},
            "notes": {
                "compile": "The generated-code tier removes dispatch "
                           "outright: on the compute-bound VM-only "
                           "microbenchmark it is ~25x over the "
                           "interpreter.  The suite-level gain is "
                           "Amdahl-capped well short of the 3x target: "
                           "profiling the all-off arm puts the "
                           "interpreter at ~55% of suite CPU (the rest "
                           "is the memory system, coherence bookkeeping "
                           "and the event engine), so even a free VM "
                           "tops out near 2.2x -- compile+fuse lands at "
                           "~2.0x, i.e. >90% of that ceiling.  After "
                           "this tier the serial wall is no longer the "
                           "VM; it is cache lookup and the fast-path "
                           "load/store hooks.",
                "fuse": "Superinstruction fusion carries the "
                        "interpreter-side speedup: it removes ~55% of "
                        "VM dispatches on this suite (6.9M -> 3.0M).  "
                        "Under the compile tier fusion still helps "
                        "slightly (fewer, larger blocks to enter and "
                        "leave), but dispatch elimination subsumes "
                        "most of its win.",
                "engine": "Bucket queue is wall-clock parity with heapq "
                          "on this suite: event times are mostly "
                          "distinct floats, so bucketing saves few heap "
                          "operations; kept for the zero-delay/collision "
                          "regimes (timer cascades, wide barriers) and "
                          "as the fast-path quiescence probe.",
                "mem": "The epoch forecast now plans ~97% of miss "
                       "transactions (see mem_fast_path; the old "
                       "quiescence probe managed ~1%), yet the arm is "
                       "wall-clock neutral-to-negative on miss-dense "
                       "benchmarks (cg ~0.8x, lu ~0.94x, ep ~1.0x "
                       "measured standalone).  Ceiling analysis: the "
                       "exactness contract pins the planner to event-"
                       "count parity with the generator twin -- one "
                       "wake per leg boundary is what keeps within-"
                       "bucket event order identical (pre-computing the "
                       "whole timeline and sleeping through it provably "
                       "reorders same-instant FIFO ties) -- so the only "
                       "claimable win is per-event dispatch cost.  The "
                       "tick's booking arithmetic (free_at/reserve/"
                       "complete) costs about what the C-level "
                       "yield-from resume it replaces does, and the "
                       "per-miss admission work (conflict classifier, "
                       "trip dry-run, counter taxonomy, ~10us/miss) is "
                       "the residual.  The tier's payoff is the census "
                       "itself plus preemption-verified exactness, not "
                       "wall clock on this contended smoke suite.",
            },
        }
    finally:
        if prior is None:
            os.environ.pop("REPRO_HOTPATH", None)
        else:
            os.environ["REPRO_HOTPATH"] = prior
        reset_for_tests()


def test_hotpath_ablation(once):
    data = once(_measure)
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
    rows = [[tiers, f"{d['cpu_min_s']:.2f}", f"{d['speedup_vs_off']:.3f}"]
            for tiers, d in data["arms"].items()]
    publish("hotpath_ablation", render_table(
        ["REPRO_HOTPATH", "cpu s (min)", "speedup vs off"], rows,
        f"hot-path tier ablation, {data['sweep']['runs']}-run static "
        f"suite (test size, 4 CMPs, {data['sweep']['reps']} interleaved "
        f"reps)"))
    # The exactness contract is the hard gate; the wall-clock floors
    # sit deliberately below the recorded ~1.5x / ~1.9x / ~25x so
    # noisy hosts don't flake.
    assert data["cycles_bit_identical_across_arms"]
    assert data["arms"]["fuse"]["speedup_vs_off"] > 1.15, data["arms"]
    assert data["arms"]["compile"]["speedup_vs_off"] > 1.5, data["arms"]
    assert data["arms"]["compile"]["vm_dispatch_speedup_vs_off"] > 3.0, \
        data["arms"]
