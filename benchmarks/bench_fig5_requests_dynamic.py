"""Figure 5: shared-data request breakdown under dynamic scheduling.

Paper shape targets (§5.2): with the tighter effective synchronization
at scheduling points, the A-stream still achieves solid timely read
coverage (paper: 28% A-Timely, 26% A-Late reads on average) and high
read-exclusive coverage (59% A-Timely + 2% A-Late), because being
ahead "relies mostly on skipping shared memory operations and not on
skipping synchronization"."""

from conftest import at_paper_scale, get_dynamic_suite, publish
from repro.harness import render_classification


def test_fig5_request_classification_dynamic(once):
    suite = once(get_dynamic_suite)

    for bench, runs in suite.items():
        cls = runs["G0"].result.classes
        reads = cls.breakdown("read")
        a_read = reads["A-Timely"] + reads["A-Late"]
        # Decisions really were forwarded through the pair channels.
        forwarded = sum(
            s["decisions_forwarded"]
            for s in runs["G0"].result.channel_stats.values())
        assert forwarded > 0, f"{bench}: no scheduling decisions relayed"
        if at_paper_scale():
            assert a_read > 0.05, \
                f"{bench}: A-stream contributes no read fills"
            assert cls.coverage("rdex") > 0.15, \
                f"{bench}: no rdex coverage under dynamic"

    text = render_classification(
        suite, configs=("G0",),
        title="Figure 5: shared-data request breakdown "
              "(dynamic scheduling, G0)")
    avg_t = sum(r["G0"].result.classes.breakdown("read")["A-Timely"]
                for r in suite.values()) / len(suite)
    avg_l = sum(r["G0"].result.classes.breakdown("read")["A-Late"]
                for r in suite.values()) / len(suite)
    avg_cov = sum(r["G0"].result.classes.coverage("rdex")
                  for r in suite.values()) / len(suite)
    text += (f"\n\naverages: A-Timely(read)={avg_t:.3f} "
             f"A-Late(read)={avg_l:.3f} rdex coverage={avg_cov:.3f}")
    publish("fig5_requests_dynamic", text)
